//! Generalized Magic Sets rewriting (§6, after \[BR87\]).
//!
//! From the adorned program, produce `P^mg`:
//!
//! * every adorned rule `p^a(t̄) <- B₁ … Bₙ` (body in sip order) becomes the
//!   *modified rule* `p^a(t̄) <- magic_p^a(t̄_b), B₁ … Bₙ`;
//! * for each adorned body literal `Bⱼ = [¬]q^c(s̄)` a *magic rule*
//!   `magic_q^c(s̄_b) <- magic_p^a(t̄_b), B₁ … Bⱼ₋₁` (negated literals get
//!   magic rules too — "we first compute p completely" for the relevant
//!   bindings);
//! * the *seed* `magic_q₀^a(query constants)` from the query.

use ldl_ast::literal::{Atom, Literal};
use ldl_ast::program::Program;
use ldl_ast::rule::Rule;
use ldl_ast::term::Term;
use ldl_value::fxhash::{FastMap, FastSet};
use ldl_value::{Fact, Symbol, Value};

use crate::adorn::{adorned_name, AdornedProgram, Adornment};

/// The magic predicate name for an adorned predicate: `m'p'bf`.
pub fn magic_name(pred: Symbol, a: &Adornment) -> Symbol {
    pred.map_name(|n| format!("m'{n}'{}", a.suffix()))
}

/// A magic-rewritten program, ready for [`crate::eval::MagicEvaluator`].
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// Magic rules + modified rules.
    pub program: Program,
    /// The seed fact for the query.
    pub seed: Fact,
    /// The query against the rewritten program: the adorned predicate with
    /// the original argument patterns.
    pub query: Atom,
    /// Adorned predicate → original predicate (for stratum lookup and for
    /// restricting answers back to user predicates).
    pub adorned_to_original: FastMap<Symbol, Symbol>,
}

/// Rewrite an adorned program into its magic version, seeding from `query`
/// (the same atom used for adornment; its ground arguments become the seed
/// values).
pub fn rewrite_magic(adorned: &AdornedProgram, query: &Atom) -> MagicProgram {
    let mut program = Program::new();
    let mut adorned_to_original: FastMap<Symbol, Symbol> = FastMap::default();

    for ar in &adorned.rules {
        let head_magic = magic_name(ar.head_pred, &ar.head_adornment);
        adorned_to_original.insert(ar.rule.head.pred, ar.head_pred);

        // Magic rules: one per adorned body literal.
        for (j, info) in ar.body_adornments.iter().enumerate() {
            let Some((orig_pred, adornment)) = info else {
                continue;
            };
            let lit = &ar.rule.body[j];
            let bound_args: Vec<Term> = lit
                .atom
                .args
                .iter()
                .zip(&adornment.0)
                .filter(|(_, &b)| b)
                .map(|(t, _)| t.clone())
                .collect();
            let mut body = vec![Literal::pos(Atom::new(
                head_magic,
                ar.bound_head_args.clone(),
            ))];
            body.extend(ar.rule.body[..j].iter().cloned());
            program.push(Rule::new(
                Atom::new(magic_name(*orig_pred, adornment), bound_args),
                body,
            ));
            adorned_to_original.insert(adorned_name(*orig_pred, adornment), *orig_pred);
        }

        // Modified rule.
        let mut body = vec![Literal::pos(Atom::new(
            head_magic,
            ar.bound_head_args.clone(),
        ))];
        body.extend(ar.rule.body.iter().cloned());
        program.push(Rule::new(ar.rule.head.clone(), body));
    }

    // Import rules: a predicate with rules may *also* have stored facts
    // (mixed EDB/IDB). The rewrite renames every IDB occurrence to its
    // adorned version, which would silently drop those facts — so each
    // adorned predicate additionally imports the original relation,
    // guarded by its magic predicate to preserve the binding restriction:
    //
    //     p'a(V̄) <- m'p'a(V̄_b), p(V̄).
    let mut imported: FastSet<Symbol> = FastSet::default();
    for ar in &adorned.rules {
        let apred = ar.rule.head.pred;
        if !imported.insert(apred) {
            continue; // one import per distinct (predicate, adornment)
        }
        let vars: Vec<Term> = (0..ar.rule.head.arity())
            .map(|i| Term::var(&format!("V{i}")))
            .collect();
        let bound_vars: Vec<Term> = vars
            .iter()
            .zip(&ar.head_adornment.0)
            .filter(|(_, &b)| b)
            .map(|(t, _)| t.clone())
            .collect();
        program.push(Rule::new(
            Atom::new(apred, vars.clone()),
            vec![
                Literal::pos(Atom::new(
                    magic_name(ar.head_pred, &ar.head_adornment),
                    bound_vars,
                )),
                Literal::pos(Atom::new(ar.head_pred, vars)),
            ],
        ));
    }

    // Seed: the ground query arguments at bound positions. Adornment marks
    // a position bound only when the term evaluates into U, so to_value
    // cannot fail here — and if that invariant ever breaks we want a clear
    // message, not a downstream arity panic.
    let seed_args: Vec<Value> = query
        .args
        .iter()
        .zip(&adorned.query_adornment.0)
        .filter(|(_, &b)| b)
        .map(|(t, _)| {
            t.to_value()
                .unwrap_or_else(|| panic!("bound query argument {t} does not denote a U-value"))
        })
        .collect();
    let seed_pred = magic_name(adorned.original_query_pred, &adorned.query_adornment);
    let seed = Fact::new(seed_pred, seed_args);

    let query_atom = Atom::new(adorned.query_pred, query.args.clone());

    MagicProgram {
        program,
        seed,
        query: query_atom,
        adorned_to_original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn_program;
    use ldl_parser::{parse_atom, parse_program};

    fn young_magic() -> MagicProgram {
        let p = parse_program(
            "a(X, Y) <- p(X, Y).\n\
             a(X, Y) <- a(X, Z), a(Z, Y).\n\
             sg(X, Y) <- siblings(X, Y).\n\
             sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).\n\
             young(X, <Y>) <- ~a(X, _), sg(X, Y).",
        )
        .unwrap();
        let q = parse_atom("young(john, S)").unwrap();
        let ap = adorn_program(&p, &q).unwrap();
        rewrite_magic(&ap, &q)
    }

    /// The §6 example yields the rules 1′–11′ (modulo the paper's redundant
    /// 1′ `magic_a <- magic_a`, which our sip generates as well from rule
    /// 2's first recursive literal, and the fused rules 4′/5′ shapes).
    #[test]
    fn young_rewrite_shape() {
        let mp = young_magic();
        let text = mp.program.to_string();
        // Seed (the paper's 11′).
        assert_eq!(mp.seed.to_string(), "m'young'bf(john)");
        // Magic of a from young (3′): m'a'bf(X) <- m'young'bf(X).
        assert!(
            text.contains("m'a'bf(X) <- m'young'bf(X)."),
            "missing 3': {text}"
        );
        // Magic of sg from young (5′ shape): after ¬a.
        assert!(
            text.contains("m'sg'bf(X) <- m'young'bf(X), ~a'bf(X, _)."),
            "missing 5': {text}"
        );
        // Recursive magic for sg (4′ shape): m'sg'bf(Z1) <- m'sg'bf(X), p(Z1, X).
        assert!(
            text.contains("m'sg'bf(Z1) <- m'sg'bf(X), p(Z1, X)."),
            "missing 4': {text}"
        );
        // Modified rule 10′: young with its magic guard.
        assert!(
            text.contains("young'bf(X, <Y>) <- m'young'bf(X), ~a'bf(X, _), sg'bf(X, Y)."),
            "missing 10': {text}"
        );
        // Modified rule 6′: a'bf(X, Y) <- m'a'bf(X), p(X, Y).
        assert!(
            text.contains("a'bf(X, Y) <- m'a'bf(X), p(X, Y)."),
            "missing 6': {text}"
        );
    }

    #[test]
    fn ancestor_bound_rewrite() {
        let p = parse_program(
            "anc(X, Y) <- par(X, Y).\n\
             anc(X, Y) <- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let q = parse_atom("anc(a, Y)").unwrap();
        let ap = adorn_program(&p, &q).unwrap();
        let mp = rewrite_magic(&ap, &q);
        let text = mp.program.to_string();
        assert!(
            text.contains("m'anc'bf(Z) <- m'anc'bf(X), par(X, Z)."),
            "{text}"
        );
        assert!(
            text.contains("anc'bf(X, Y) <- m'anc'bf(X), par(X, Y)."),
            "{text}"
        );
        assert_eq!(mp.seed.to_string(), "m'anc'bf(a)");
        assert_eq!(mp.query.pred.as_str(), "anc'bf");
    }

    #[test]
    fn all_free_query_degenerates() {
        let p = parse_program("anc(X, Y) <- par(X, Y).").unwrap();
        let q = parse_atom("anc(X, Y)").unwrap();
        let ap = adorn_program(&p, &q).unwrap();
        let mp = rewrite_magic(&ap, &q);
        // Seed is the 0-ary magic fact.
        assert_eq!(mp.seed.arity(), 0);
        assert_eq!(mp.seed.pred().as_str(), "m'anc'ff");
    }
}
