//! Evaluating magic-rewritten programs (§6's evaluation discipline).
//!
//! The rewritten program `P^mg` is *not layered*: magic predicates depend on
//! body predicates that depend on magic predicates. §6 resolves the
//! apparent paradox: "we only need to evaluate these body predicates fully
//! *for a given tuple in the magic predicate*". Concretely:
//!
//! * **base rules** — magic rules and modified rules without grouping heads
//!   or negated literals — are monotone and run to a joint semi-naive
//!   fixpoint;
//! * **guarded rules** — grouping heads, and any rule with a negated
//!   literal — run only at a base fixpoint, ordered by the *original*
//!   program's layering, with a fresh base fixpoint after each layer;
//! * the whole schedule repeats until nothing changes.
//!
//! Soundness of applying a guarded rule at a base fixpoint: a magic tuple's
//! downward closure (all magic tuples it implies, and all ordinary facts
//! derivable under them) is saturated by the base fixpoint together with
//! the tuple itself, so the facts feeding a group or a negation test for
//! that tuple are final — later magic tuples only add facts for *their*
//! closures, and overlapping closures derive identical facts.

use ldl_ast::literal::Atom;
use ldl_ast::program::{Builtin, Program};
use ldl_ast::wf::Dialect;
use ldl_eval::fixpoint::{naive_fixpoint, run_rule_once, semi_naive_fixpoint};
use ldl_eval::grouping::run_grouping_rule;
use ldl_eval::plan::{ensure_indexes, HeadKind, RulePlan};
use ldl_eval::stats::EvalStats;
use ldl_eval::{BudgetMeter, EvalError, EvalOptions, Evaluator, QueryAnswer};
use ldl_storage::Database;
use ldl_stratify::Stratification;
use ldl_value::fxhash::FastSet;
use ldl_value::Symbol;

use crate::adorn::adorn_program;
use crate::rewrite::{rewrite_magic, MagicProgram};

/// Evaluator for magic-rewritten programs.
#[derive(Clone, Debug, Default)]
pub struct MagicEvaluator {
    /// Evaluation configuration (shared with the plain evaluator).
    pub options: EvalOptions,
}

impl MagicEvaluator {
    /// With default options.
    pub fn new() -> MagicEvaluator {
        MagicEvaluator::default()
    }

    /// With explicit options.
    pub fn with_options(options: EvalOptions) -> MagicEvaluator {
        MagicEvaluator { options }
    }

    /// Compile `program` + `query` through sips → adornment → magic
    /// rewriting.
    pub fn compile(program: &Program, query: &Atom) -> Result<MagicProgram, EvalError> {
        let adorned =
            adorn_program(program, query).map_err(|e| EvalError::Adornment(e.to_string()))?;
        Ok(rewrite_magic(&adorned, query))
    }

    /// Evaluate the rewritten program over `edb`. `original` supplies the
    /// layering that orders the guarded rules.
    pub fn evaluate(
        &self,
        mp: &MagicProgram,
        original: &Program,
        edb: &Database,
    ) -> Result<Database, EvalError> {
        let strat = Stratification::canonical(original)?;
        let stratum_of = |pred: Symbol| -> usize {
            mp.adorned_to_original
                .get(&pred)
                .map(|&orig| strat.layer(orig))
                .unwrap_or(0)
        };

        // Compile all rules; classify.
        let mut base: Vec<RulePlan> = Vec::new();
        let mut base_preds: FastSet<Symbol> = FastSet::default();
        // (stratum, plan) for guarded rules.
        let mut guarded: Vec<(usize, RulePlan)> = Vec::new();
        for rule in &mp.program.rules {
            let plan = RulePlan::compile(rule)?;
            let has_negation = rule
                .body
                .iter()
                .any(|l| !l.positive && Builtin::resolve(l.atom.pred, l.atom.arity()).is_none());
            let is_grouping = matches!(plan.head_kind, HeadKind::Grouping { .. });
            if has_negation || is_grouping {
                let mut s = stratum_of(rule.head.pred);
                for l in &rule.body {
                    if !l.positive && Builtin::resolve(l.atom.pred, l.atom.arity()).is_none() {
                        s = s.max(stratum_of(l.atom.pred) + 1);
                    }
                }
                guarded.push((s, plan));
            } else {
                base_preds.insert(rule.head.pred);
                base.push(plan);
            }
        }
        guarded.sort_by_key(|(s, _)| *s);
        // Guarded heads also produce facts the base fixpoint consumes;
        // their predicates must be deltas for semi-naive restarts.
        for (_, p) in &guarded {
            base_preds.insert(p.head.pred);
        }

        let mut db = edb.clone();
        // Pre-create head relations (so negation sees empty relations, not
        // missing ones) and insert the seed.
        for rule in &mp.program.rules {
            db.relation_mut(rule.head.pred, rule.head.arity());
        }
        db.relation_mut(mp.seed.pred(), mp.seed.arity());
        db.insert(mp.seed.clone());

        // One meter spans the whole staged schedule, so a budget covers the
        // query end to end rather than per fixpoint. The magic schedule is
        // not layered; report the original query predicate's stratum.
        let mut meter = BudgetMeter::new(&self.options.budget);
        let run_base = |db: &mut Database,
                        opts: &EvalOptions,
                        meter: &mut BudgetMeter<'_>|
         -> Result<(), EvalError> {
            ensure_indexes(&base, db);
            let mut stats = EvalStats::new();
            if opts.semi_naive {
                semi_naive_fixpoint(&base, &base_preds, db, opts, &mut stats, meter)
            } else {
                naive_fixpoint(&base, db, opts, &mut stats, meter)
            }
        };
        let apply_guarded = |db: &mut Database,
                             opts: &EvalOptions,
                             meter: &mut BudgetMeter<'_>,
                             pick: &dyn Fn(usize) -> bool|
         -> Result<usize, EvalError> {
            let mut changed = 0;
            for (gs, plan) in &guarded {
                if !pick(*gs) {
                    continue;
                }
                ensure_indexes(std::slice::from_ref(plan), db);
                changed += match plan.head_kind {
                    HeadKind::Grouping { .. } => {
                        meter.check()?;
                        let (tuples, attempts) = run_grouping_rule(
                            plan,
                            db,
                            opts.use_indexes,
                            opts.compiled,
                            opts.budget.gate(),
                        );
                        let mut n = 0;
                        for t in tuples {
                            if db.insert_id_slice(plan.head.pred, &t) {
                                n += 1;
                            }
                        }
                        meter.charge(attempts, n);
                        meter.check()?;
                        n as usize
                    }
                    HeadKind::Simple => {
                        run_rule_once(plan, db, None, opts, &mut EvalStats::new(), meter)?
                    }
                };
            }
            Ok(changed)
        };

        // Stage-by-stage schedule. A guarded rule at stratum s (a group or a
        // negation test) may only run when everything its bindings can reach
        // in strata < s is saturated — for *every* magic tuple existing at
        // that moment, including tuples minted by lower guarded rules a
        // heartbeat earlier. So each stage first drives (base ∪ guarded<s)
        // to a joint fixpoint, then applies the stratum-s guarded rules, and
        // repeats: their outputs can mint new magic tuples that extend the
        // lower strata and enable new stratum-s bindings. Already-emitted
        // groups/negation results stay valid — a binding's derivations are
        // determined by its own magic closure, which was saturated when the
        // binding was processed.
        let max_stratum = guarded.iter().map(|(s, _)| *s).max().unwrap_or(0);
        for s in 0..=max_stratum {
            meter.set_context(s, Some(mp.query.pred));
            loop {
                loop {
                    run_base(&mut db, &self.options, &mut meter)?;
                    if apply_guarded(&mut db, &self.options, &mut meter, &|gs| gs < s)? == 0 {
                        break;
                    }
                }
                if apply_guarded(&mut db, &self.options, &mut meter, &|gs| gs == s)? == 0 {
                    break;
                }
            }
        }
        run_base(&mut db, &self.options, &mut meter)?;
        Ok(db)
    }

    /// One-shot: compile, evaluate, and answer the query. This is
    /// `(P^mg ∪ {seed}, q^a)` of Theorem 4.
    pub fn query(
        &self,
        program: &Program,
        edb: &Database,
        query: &Atom,
    ) -> Result<Vec<QueryAnswer>, EvalError> {
        // Check the *original* program (the rewritten one is deliberately
        // non-layered).
        if self.options.check_wf {
            ldl_ast::wf::check_program(program, Dialect::Ldl1).map_err(EvalError::from)?;
        }
        Stratification::canonical(program)?;
        let mp = Self::compile(program, query)?;
        let db = self.evaluate(&mp, program, edb)?;
        let plain = Evaluator::with_options(EvalOptions {
            check_wf: false,
            ..self.options.clone()
        });
        Ok(plain.query(&db, &mp.query))
    }
}
