#![warn(missing_docs)]

//! Magic-set compilation of admissible LDL1 programs (§6).
//!
//! The pipeline follows the paper's three steps:
//!
//! 1. **sips** ([`sip`]) — for each rule and each binding pattern of its
//!    head, a *sideways information passing strategy* describing how
//!    bindings flow through the body. Our default sip is the greedy
//!    executable ordering, restricted per the paper: variables that occur in
//!    the head only inside a grouped argument `<X>` never carry bindings
//!    (§6's footnoted condition), and negated literals receive bindings but
//!    supply none.
//! 2. **adornment** ([`adorn`]) — starting from the query's binding
//!    pattern, specialize every reachable IDB predicate by a `b`/`f`
//!    string, exactly as in \[BR87\].
//! 3. **Generalized Magic Sets rewriting** ([`rewrite`]) — `magic_p`
//!    predicates restrict each rule, with one magic rule per IDB body
//!    literal collecting the sip-preceding literals, plus the query seed.
//!
//! The rewritten program "is not layered because of such cyclicity" between
//! magic predicates and guarded bodies; [`eval`] implements the §6
//! evaluation discipline — grouping and negation are applied only once the
//! sub-program feeding them is saturated for every magic tuple seen so far,
//! which is sound because a magic tuple's downward closure is saturated
//! together with it (see `eval`'s module docs).

pub mod adorn;
pub mod eval;
pub mod rewrite;
pub mod sip;

pub use adorn::{AdornedProgram, Adornment};
pub use eval::MagicEvaluator;
pub use rewrite::{rewrite_magic, MagicProgram};
