//! Sideways information passing strategies (§6).
//!
//! A sip for a rule (given a set of bound head arguments) is, for our
//! purposes, a total order on the body literals together with, per literal,
//! the set of variables bound when it is reached. The paper's graph
//! formulation (conditions 1–3) admits many sips; we construct the greedy
//! one the join planner would execute, which satisfies the paper's
//! conditions by construction:
//!
//! * arc labels only use variables from bound head arguments or earlier
//!   *positive* literals (negated literals supply no bindings);
//! * a variable occurring in the head **only inside `<X>`** is never
//!   treated as bound — §6: restricting the body to the values inside a
//!   bound grouped argument would be unsound, because the grouped set is
//!   defined as *all* values satisfying the body.

use ldl_ast::program::Builtin;
use ldl_ast::rule::Rule;
use ldl_ast::term::{Term, Var};
use ldl_value::fxhash::FastSet;

/// The sip-induced execution order for one rule.
#[derive(Clone, Debug)]
pub struct Sip {
    /// Body literal indices in sip order.
    pub order: Vec<usize>,
    /// For each entry of `order`: the variables bound *before* that literal
    /// executes.
    pub bound_before: Vec<FastSet<Var>>,
}

/// Variables of the head that receive bindings from the given bound
/// argument positions — grouped arguments never contribute.
pub fn head_bound_vars(rule: &Rule, bound_args: &[bool]) -> FastSet<Var> {
    let mut out = FastSet::default();
    for (i, t) in rule.head.args.iter().enumerate() {
        if !bound_args.get(i).copied().unwrap_or(false) {
            continue;
        }
        if t.has_group() {
            continue; // §6: bound grouped arguments pass nothing
        }
        let mut vs = Vec::new();
        t.vars(&mut vs);
        out.extend(vs);
    }
    out
}

/// Is every variable of `t` in `bound` (and `t` free of `_` and `<…>`)?
fn term_bound(t: &Term, bound: &FastSet<Var>) -> bool {
    let mut vs = Vec::new();
    t.vars(&mut vs);
    if t.has_group() {
        return false;
    }
    fn has_anon(t: &Term) -> bool {
        match t {
            Term::Anon => true,
            Term::Var(_) | Term::Const(_) => false,
            Term::Compound(_, args) | Term::SetEnum(args) => args.iter().any(has_anon),
            Term::Scons(h, s) => has_anon(h) || has_anon(s),
            Term::Group(g) => has_anon(g),
            Term::Arith(_, l, r) => has_anon(l) || has_anon(r),
        }
    }
    !has_anon(t) && vs.iter().all(|v| bound.contains(v))
}

/// Build the default sip for `rule` with the given bound head argument
/// positions. Returns `None` when no executable order exists (the same
/// condition the planner reports as unschedulable).
pub fn default_sip(rule: &Rule, bound_args: &[bool]) -> Option<Sip> {
    let mut bound = head_bound_vars(rule, bound_args);
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let mut order = Vec::new();
    let mut bound_before = Vec::new();

    while !remaining.is_empty() {
        let mut best: Option<(usize, i32)> = None;
        for (ri, &li) in remaining.iter().enumerate() {
            let lit = &rule.body[li];
            let builtin = Builtin::resolve(lit.atom.pred, lit.atom.arity());
            let all_bound = lit.vars().iter().all(|v| bound.contains(v));
            let score = match builtin {
                Some(bi) => {
                    if all_bound {
                        Some(100)
                    } else if lit.positive
                        && ldl_eval::builtins::can_schedule(bi, &lit.atom.args, &|t| {
                            term_bound(t, &bound)
                        })
                    {
                        Some(50)
                    } else {
                        None
                    }
                }
                None if lit.positive => {
                    let bound_cnt = lit
                        .atom
                        .args
                        .iter()
                        .filter(|t| term_bound(t, &bound))
                        .count() as i32;
                    Some(10 + bound_cnt)
                }
                None => all_bound.then_some(90),
            };
            if let Some(s) = score {
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((ri, s));
                }
            }
        }
        let (ri, _) = best?;
        let li = remaining.remove(ri);
        order.push(li);
        bound_before.push(bound.clone());
        let lit = &rule.body[li];
        if lit.positive {
            bound.extend(lit.vars());
        }
    }
    Some(Sip {
        order,
        bound_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_parser::parse_rule;

    #[test]
    fn sip_orders_negation_after_bindings() {
        // §6 rule 5: young(X, <Y>) <- ~a(X, Z), sg(X, Y), with head X bound:
        // the paper's sip runs ¬a first (X bound suffices? a needs all vars
        // bound for negation — Z is free, so sg or nothing binds Z).
        // Written safely with `_`, ¬a(X, _) runs as soon as X is bound.
        let r = parse_rule("young(X, <Y>) <- ~a(X, _), sg(X, Y).").unwrap();
        let sip = default_sip(&r, &[true, false]).unwrap();
        // X bound from head ⇒ ¬a first (score 90 vs scan 11), then sg.
        assert_eq!(sip.order, vec![0, 1]);
        assert!(sip.bound_before[0].contains(&Var::new("X")));
    }

    #[test]
    fn grouped_head_arg_passes_nothing() {
        let r = parse_rule("p(X, <Y>) <- e(X, Y).").unwrap();
        // Even if the caller claims the second argument bound, Y gets no
        // binding.
        let vars = head_bound_vars(&r, &[true, true]);
        assert!(vars.contains(&Var::new("X")));
        assert!(!vars.contains(&Var::new("Y")));
    }

    #[test]
    fn unexecutable_sip_is_none() {
        let r = parse_rule("q(X) <- member(X, S).").unwrap();
        assert!(default_sip(&r, &[false]).is_none());
        assert!(default_sip(&r, &[true]).is_none()); // S still unbound
    }

    #[test]
    fn bound_head_arg_drives_order() {
        let r = parse_rule("sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).").unwrap();
        let sip = default_sip(&r, &[true, false]).unwrap();
        // p(Z1, X) has a bound arg; it goes first, as in the paper's sip
        // for rule 4: {sg_h, p} → Z1 sg.
        assert_eq!(sip.order[0], 0);
    }
}
