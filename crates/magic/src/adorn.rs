//! Adornment: specializing predicates by binding patterns (§6, after
//! \[BR87\]).

use std::collections::VecDeque;
use std::fmt;

use ldl_ast::literal::{Atom, Literal};
use ldl_ast::program::{Builtin, Program};
use ldl_ast::rule::Rule;
use ldl_ast::term::Term;
use ldl_value::fxhash::{FastMap, FastSet};
use ldl_value::Symbol;

use crate::sip::{default_sip, Sip};

/// A binding pattern: one `b`/`f` per argument position.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Adornment(pub Vec<bool>);

impl Adornment {
    /// The all-free adornment of the given arity.
    pub fn all_free(arity: usize) -> Adornment {
        Adornment(vec![false; arity])
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// The `bf`-style suffix.
    pub fn suffix(&self) -> String {
        self.0.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.suffix())
    }
}

/// The adorned name `p'bf` for `p` with adornment `a`. The `'` keeps the
/// namespace disjoint from user predicates.
pub fn adorned_name(pred: Symbol, a: &Adornment) -> Symbol {
    pred.map_name(|n| format!("{n}'{}", a.suffix()))
}

/// One adorned rule, with its sip retained for the magic rewriting.
#[derive(Clone, Debug)]
pub struct AdornedRule {
    /// The rule with IDB predicates renamed to their adorned versions and
    /// the body in sip order.
    pub rule: Rule,
    /// The original head predicate.
    pub head_pred: Symbol,
    /// The head's binding pattern.
    pub head_adornment: Adornment,
    /// For each body literal (in the rewritten order): the original
    /// predicate and adornment if it is an adorned IDB literal.
    pub body_adornments: Vec<Option<(Symbol, Adornment)>>,
    /// Bound argument terms of the head (the magic predicate's arguments).
    pub bound_head_args: Vec<Term>,
}

/// An adorned program: the reachable adorned rules plus the adorned query.
#[derive(Clone, Debug)]
pub struct AdornedProgram {
    /// All reachable adorned rules.
    pub rules: Vec<AdornedRule>,
    /// The adorned query predicate name.
    pub query_pred: Symbol,
    /// The query's binding pattern.
    pub query_adornment: Adornment,
    /// Original predicate of the query.
    pub original_query_pred: Symbol,
}

/// Errors from adornment.
#[derive(Clone, Debug)]
pub enum AdornError {
    /// A rule has no executable sip for a required binding pattern.
    NoSip {
        /// The rule, rendered.
        rule: String,
        /// The binding pattern that could not be propagated.
        adornment: String,
    },
    /// The query predicate has no rules and is not an EDB predicate the
    /// caller can scan directly.
    NotIdb(String),
}

impl fmt::Display for AdornError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdornError::NoSip { rule, adornment } => {
                write!(
                    f,
                    "no executable sip for rule {rule} with adornment {adornment}"
                )
            }
            AdornError::NotIdb(p) => write!(f, "query predicate {p} is not defined by rules"),
        }
    }
}

impl std::error::Error for AdornError {}

/// Compute the adornment of the query atom: argument positions whose terms
/// are ground are bound. Grouped positions are never bound (§6).
pub fn query_adornment(query: &Atom) -> Adornment {
    Adornment(
        query
            .args
            .iter()
            // Bound = ground *and* denoting an element of U: a term like
            // `scons(1, 2)` is syntactically ground but evaluates outside U
            // (§2.2 restriction 1); treating it as free keeps the seed's
            // arity honest and the term is post-filtered against answers
            // (matching nothing, as it should).
            .map(|t| t.is_ground() && t.to_value().is_some())
            .collect(),
    )
}

/// Produce the adorned program reachable from `query` (e.g. the paper's
/// rules 1–5 become the `a^bf`/`sg^bf`/`young^bf` set).
pub fn adorn_program(program: &Program, query: &Atom) -> Result<AdornedProgram, AdornError> {
    let idb = program.idb_predicates();
    if !idb.contains_key(&query.pred) {
        return Err(AdornError::NotIdb(query.pred.to_string()));
    }
    let q_adorn = query_adornment(query);

    let mut done: FastSet<(Symbol, Adornment)> = FastSet::default();
    let mut queue: VecDeque<(Symbol, Adornment)> = VecDeque::new();
    let mut rules = Vec::new();
    queue.push_back((query.pred, q_adorn.clone()));
    done.insert((query.pred, q_adorn.clone()));

    while let Some((pred, adornment)) = queue.pop_front() {
        for rule in program.rules_for(pred) {
            // §6: grouped head arguments are never bound.
            let bound_args: Vec<bool> = adornment
                .0
                .iter()
                .zip(&rule.head.args)
                .map(|(&b, t)| b && !t.has_group())
                .collect();
            let Some(sip) = default_sip(rule, &bound_args) else {
                return Err(AdornError::NoSip {
                    rule: rule.to_string(),
                    adornment: adornment.suffix(),
                });
            };
            let adorned = adorn_rule(rule, &bound_args, &adornment, &sip, &idb);
            // Enqueue newly-discovered adorned predicates.
            for entry in adorned.body_adornments.iter().flatten() {
                if done.insert(entry.clone()) {
                    queue.push_back(entry.clone());
                }
            }
            rules.push(adorned);
        }
    }

    Ok(AdornedProgram {
        rules,
        query_pred: adorned_name(query.pred, &q_adorn),
        query_adornment: q_adorn,
        original_query_pred: query.pred,
    })
}

fn adorn_rule(
    rule: &Rule,
    bound_args: &[bool],
    head_adornment: &Adornment,
    sip: &Sip,
    idb: &FastMap<Symbol, usize>,
) -> AdornedRule {
    let mut body = Vec::with_capacity(rule.body.len());
    let mut body_adornments = Vec::with_capacity(rule.body.len());
    for (k, &li) in sip.order.iter().enumerate() {
        let lit = &rule.body[li];
        let is_builtin = Builtin::resolve(lit.atom.pred, lit.atom.arity()).is_some();
        if !is_builtin && idb.contains_key(&lit.atom.pred) {
            let bound = &sip.bound_before[k];
            let adornment = Adornment(
                lit.atom
                    .args
                    .iter()
                    .map(|t| t.is_bound_under(&|v| bound.contains(&v)))
                    .collect(),
            );
            let renamed = Atom::new(
                adorned_name(lit.atom.pred, &adornment),
                lit.atom.args.clone(),
            );
            body.push(Literal {
                positive: lit.positive,
                atom: renamed,
            });
            body_adornments.push(Some((lit.atom.pred, adornment)));
        } else {
            body.push(lit.clone());
            body_adornments.push(None);
        }
    }
    let bound_head_args: Vec<Term> = rule
        .head
        .args
        .iter()
        .zip(bound_args)
        .filter(|(_, &b)| b)
        .map(|(t, _)| t.clone())
        .collect();
    let head = Atom::new(
        adorned_name(rule.head.pred, head_adornment),
        rule.head.args.clone(),
    );
    AdornedRule {
        rule: Rule::new(head, body),
        head_pred: rule.head.pred,
        head_adornment: head_adornment.clone(),
        body_adornments,
        bound_head_args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_parser::{parse_atom, parse_program};

    fn young_program() -> Program {
        parse_program(
            "a(X, Y) <- p(X, Y).\n\
             a(X, Y) <- a(X, Z), a(Z, Y).\n\
             sg(X, Y) <- siblings(X, Y).\n\
             sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).\n\
             young(X, <Y>) <- ~a(X, _), sg(X, Y).",
        )
        .unwrap()
    }

    /// The paper's running example: the adorned set uses a^bf, sg^bf,
    /// young^bf throughout (its rules 1–5 with the bf superscripts).
    #[test]
    fn young_adornment_matches_paper() {
        let p = young_program();
        let ap = adorn_program(&p, &parse_atom("young(john, S)").unwrap()).unwrap();
        assert_eq!(ap.query_pred.as_str(), "young'bf");
        // Every adorned body literal is ^bf.
        let mut seen = FastSet::default();
        for r in &ap.rules {
            seen.insert(r.rule.head.pred);
            for ad in r.body_adornments.iter().flatten() {
                assert_eq!(ad.1.suffix(), "bf", "in {}", r.rule);
            }
        }
        assert!(seen.contains(&Symbol::intern("a'bf")));
        assert!(seen.contains(&Symbol::intern("sg'bf")));
        assert!(seen.contains(&Symbol::intern("young'bf")));
        // 5 original rules, each adorned exactly once.
        assert_eq!(ap.rules.len(), 5);
    }

    #[test]
    fn free_query_gives_all_free_adornments() {
        let p = parse_program(
            "anc(X, Y) <- par(X, Y).\n\
             anc(X, Y) <- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let ap = adorn_program(&p, &parse_atom("anc(X, Y)").unwrap()).unwrap();
        assert_eq!(ap.query_pred.as_str(), "anc'ff");
        // The recursive literal stays ff or becomes bf depending on the sip;
        // with nothing bound the scan order binds X, Z first via par.
        assert!(ap.rules.len() >= 2);
    }

    #[test]
    fn bound_first_arg_propagates() {
        let p = parse_program(
            "anc(X, Y) <- par(X, Y).\n\
             anc(X, Y) <- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let ap = adorn_program(&p, &parse_atom("anc(a, Y)").unwrap()).unwrap();
        assert_eq!(ap.query_pred.as_str(), "anc'bf");
        // Recursive call anc(Z, Y) with Z bound by par(X, Z): adorned bf.
        let rec = ap
            .rules
            .iter()
            .find(|r| r.rule.body.len() == 2)
            .expect("recursive rule");
        let adorned: Vec<_> = rec.body_adornments.iter().flatten().collect();
        assert_eq!(adorned.len(), 1);
        assert_eq!(adorned[0].1.suffix(), "bf");
    }

    #[test]
    fn non_idb_query_rejected() {
        let p = parse_program("anc(X, Y) <- par(X, Y).").unwrap();
        assert!(matches!(
            adorn_program(&p, &parse_atom("par(a, Y)").unwrap()),
            Err(AdornError::NotIdb(_))
        ));
    }

    #[test]
    fn grouped_query_position_is_free() {
        let p = young_program();
        // Even a ground second argument must not bind the grouped position.
        let ap = adorn_program(&p, &parse_atom("young(john, {a})").unwrap()).unwrap();
        assert_eq!(ap.query_adornment.suffix(), "bb");
        // ... the query adornment records it, but the head-side binding is
        // dropped for the grouped arg: the young rule's magic args are [X].
        let young_rule = ap
            .rules
            .iter()
            .find(|r| r.head_pred == Symbol::intern("young"))
            .unwrap();
        assert_eq!(young_rule.bound_head_args.len(), 1);
    }
}
