#![warn(missing_docs)]

//! Relational storage substrate for bottom-up evaluation.
//!
//! The evaluator works on *relations* of ground tuples over the LDL1
//! universe. This crate provides:
//!
//! * [`Relation`]: an append-only, duplicate-free tuple store over a flat
//!   paged row arena, with incrementally-maintained position-keyed hash
//!   indexes on arbitrary column subsets — append-only storage gives
//!   semi-naive evaluation its deltas for free (a delta is just an index
//!   range), and the arena makes scans linear memory walks with no
//!   per-tuple allocation;
//! * [`Database`]: a name → relation map holding the EDB and, during
//!   evaluation, the growing IDB.

pub mod database;
pub mod relation;

#[allow(deprecated)]
pub use database::tuple;
pub use database::{intern_ids, resolve_fact, Database, Mark};
#[allow(deprecated)]
pub use relation::Tuple;
pub use relation::{shard_of_key, shard_of_projection, IndexRef, Relation};
