#![warn(missing_docs)]

//! Relational storage substrate for bottom-up evaluation.
//!
//! The evaluator works on *relations* of ground tuples over the LDL1
//! universe. This crate provides:
//!
//! * [`Relation`]: an append-only, duplicate-free tuple store with
//!   incrementally-maintained hash indexes on arbitrary column subsets —
//!   append-only storage gives semi-naive evaluation its deltas for free
//!   (a delta is just an index range);
//! * [`Database`]: a name → relation map holding the EDB and, during
//!   evaluation, the growing IDB.

pub mod database;
pub mod relation;

pub use database::{resolve_fact, tuple, Database, Mark};
pub use relation::{shard_of_key, shard_of_projection, IndexRef, Relation, Tuple};
