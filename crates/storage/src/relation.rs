//! Append-only relations over flat paged tuple arenas, with
//! position-keyed hash indexes.
//!
//! Tuples are stored as interned [`ValueId`]s laid out contiguously in
//! fixed-stride arena pages: row `pos` of an arity-`k` relation is `k`
//! consecutive ids inside one page, so a scan is a linear memory walk and
//! a row access is a shift, a mask, and an add — no per-tuple heap
//! allocation, no pointer chasing. The duplicate filter and every index
//! key onto that arena by *row position*: a lookup hashes the probe slice
//! and compares it against rows in place, so neither the insert path nor
//! the probe path allocates. Structural [`ldl_value::Value`]s exist only
//! at the [`crate::Database`] fact boundary.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ldl_value::fxhash::{FastMap, FastSet, FxHasher};
use ldl_value::{intern, ValueId};

/// A ground tuple of interned values as an owned shared allocation.
#[deprecated(
    note = "tuples live in flat paged arenas now; work with `&[ValueId]` row \
            slices (`Relation::get`, `Relation::insert_slice`) instead"
)]
pub type Tuple = Arc<[ValueId]>;

/// Positions are dense `u32`s; the top two values are reserved for the
/// hash-table sentinels, so a relation holds at most `u32::MAX - 2` rows.
const MAX_ROWS: u32 = u32::MAX - 2;

/// Hash a slice of interned ids (FxHash fold — one multiply-xor per id).
#[inline]
fn hash_ids(ids: &[ValueId]) -> u64 {
    let mut h = FxHasher::default();
    for v in ids {
        v.hash(&mut h);
    }
    h.finish()
}

/// Hash the projection of `row` onto `cols` — the same stream
/// [`hash_ids`] produces for the materialized key, without materializing
/// it.
#[inline]
fn hash_projection(cols: &[usize], row: &[ValueId]) -> u64 {
    let mut h = FxHasher::default();
    for &c in cols {
        row[c].hash(&mut h);
    }
    h.finish()
}

/// The paged flat row arena: rows of a fixed arity stored contiguously in
/// chunks of `1 << shift` rows. Pages are append-only and never move or
/// reallocate once created (each is created at full capacity), so row
/// positions are stable and borrowed row slices stay valid for the life
/// of a `&Rows` borrow regardless of how many rows were appended before
/// it was taken.
#[derive(Clone, Debug)]
struct Rows {
    arity: usize,
    /// `log2` of rows per page.
    shift: u32,
    /// `(1 << shift) - 1`.
    mask: u32,
    /// Row count.
    len: u32,
    pages: Vec<Vec<ValueId>>,
}

impl Rows {
    fn new(arity: usize) -> Rows {
        // Target ≈ 4096 ids (16 KiB) per page, at a power-of-two row
        // count so addressing is shift/mask. Wide relations degrade to
        // one row per page rather than overflowing; arity 0 stores no
        // page data, so its nominal page size is moot.
        let target = 4096usize.checked_div(arity).unwrap_or(4096).max(1);
        let per_page = 1usize << (usize::BITS - 1 - target.leading_zeros());
        let shift = per_page.trailing_zeros();
        Rows {
            arity,
            shift,
            mask: (per_page - 1) as u32,
            len: 0,
            pages: Vec::new(),
        }
    }

    /// The row at `pos` as a borrowed slice of `arity` ids.
    #[inline]
    fn get(&self, pos: u32) -> &[ValueId] {
        if self.arity == 0 {
            return &[];
        }
        let page = (pos >> self.shift) as usize;
        let off = ((pos & self.mask) as usize) * self.arity;
        &self.pages[page][off..off + self.arity]
    }

    /// Append one row, returning its position. Allocates only when a new
    /// page is opened (every `1 << shift` rows).
    #[inline]
    fn push(&mut self, row: &[ValueId]) -> u32 {
        debug_assert_eq!(row.len(), self.arity);
        let pos = self.len;
        self.len += 1;
        if self.arity > 0 {
            let page = (pos >> self.shift) as usize;
            if page == self.pages.len() {
                let cap = ((self.mask as usize) + 1) * self.arity;
                self.pages.push(Vec::with_capacity(cap));
            }
            self.pages[page].extend_from_slice(row);
        }
        pos
    }

    /// Drop every row at position `n` or beyond.
    fn truncate(&mut self, n: u32) {
        if n >= self.len {
            return;
        }
        self.len = n;
        if self.arity == 0 {
            return;
        }
        let full = (n >> self.shift) as usize;
        let rem = (n & self.mask) as usize;
        if rem == 0 {
            self.pages.truncate(full);
        } else {
            self.pages.truncate(full + 1);
            self.pages[full].truncate(rem * self.arity);
        }
    }

    /// Bytes of arena page memory currently reserved.
    fn bytes(&self) -> usize {
        self.pages
            .iter()
            .map(|p| p.capacity() * std::mem::size_of::<ValueId>())
            .sum()
    }
}

/// Open-addressed hash-table core shared by the duplicate filter and the
/// indexes: 1-byte tags (empty / deleted / 7 hash bits) probed first, a
/// `u32` payload per slot (a row position or a bucket handle). Key
/// storage lives *outside* the table — callers compare candidate payloads
/// against arena rows in place — so growing or probing never touches an
/// owned key.
#[derive(Clone, Debug, Default)]
struct RawTable {
    tags: Vec<u8>,
    slots: Vec<u32>,
    live: usize,
    tombs: usize,
}

const T_EMPTY: u8 = 0;
const T_DELETED: u8 = 1;

/// Seven hash bits plus the occupied bit — probing rejects almost every
/// non-matching slot without fetching the row it points at.
#[inline]
fn tag_of(h: u64) -> u8 {
    (h >> 57) as u8 | 0x80
}

impl RawTable {
    /// The payload whose key matches, per `eq` (called only on slots whose
    /// tag byte matches the hash).
    #[inline]
    fn find(&self, h: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
        Some(self.slots[self.find_slot(h, eq)?])
    }

    /// The slot index holding a matching payload.
    #[inline]
    fn find_slot(&self, h: u64, eq: impl Fn(u32) -> bool) -> Option<usize> {
        if self.tags.is_empty() {
            return None;
        }
        let mask = self.tags.len() - 1;
        let tag = tag_of(h);
        let mut i = (h as usize) & mask;
        let mut step = 0;
        loop {
            let t = self.tags[i];
            if t == T_EMPTY {
                return None;
            }
            if t == tag && eq(self.slots[i]) {
                return Some(i);
            }
            // Triangular probing: visits every slot of a power-of-two
            // table exactly once.
            step += 1;
            i = (i + step) & mask;
        }
    }

    /// Insert a payload under `h`. The key must be absent (callers probe
    /// first) and capacity ensured ([`RawTable::ensure_cap`]).
    fn insert(&mut self, h: u64, payload: u32) {
        let mask = self.tags.len() - 1;
        let mut i = (h as usize) & mask;
        let mut step = 0;
        while self.tags[i] & 0x80 != 0 {
            step += 1;
            i = (i + step) & mask;
        }
        if self.tags[i] == T_DELETED {
            self.tombs -= 1;
        }
        self.tags[i] = tag_of(h);
        self.slots[i] = payload;
        self.live += 1;
    }

    /// Tombstone slot `i` (from [`RawTable::find_slot`]).
    fn delete_slot(&mut self, i: usize) {
        self.tags[i] = T_DELETED;
        self.live -= 1;
        self.tombs += 1;
    }

    /// Make room for one more entry, rehashing stored payloads through
    /// `rehash` when the table grows or needs its tombstones compacted.
    fn ensure_cap(&mut self, rehash: impl Fn(u32) -> u64) {
        let cap = self.tags.len();
        if cap == 0 {
            self.tags = vec![T_EMPTY; 16];
            self.slots = vec![0; 16];
            return;
        }
        if (self.live + self.tombs + 1) * 4 <= cap * 3 {
            return;
        }
        // Grow when genuinely full; rehash at the same size when
        // tombstones are the bulk of the occupancy.
        let new_cap = if (self.live + 1) * 2 > cap {
            cap * 2
        } else {
            cap
        };
        let old_tags = std::mem::replace(&mut self.tags, vec![T_EMPTY; new_cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![0; new_cap]);
        self.tombs = 0;
        let mask = new_cap - 1;
        for (t, s) in old_tags.into_iter().zip(old_slots) {
            if t & 0x80 == 0 {
                continue;
            }
            let h = rehash(s);
            let mut i = (h as usize) & mask;
            let mut step = 0;
            while self.tags[i] != T_EMPTY {
                step += 1;
                i = (i + step) & mask;
            }
            self.tags[i] = tag_of(h);
            self.slots[i] = s;
        }
    }

    /// Reset to empty, keeping capacity.
    fn clear(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = T_EMPTY);
        self.live = 0;
        self.tombs = 0;
    }
}

/// The duplicate filter *and* position map: row positions keyed by their
/// arena content. Each live tuple maps to its insertion position; removed
/// (tombstoned) tuples are absent, so `contains`/`position_of` see only
/// live facts. No owned keys — lookups compare the probe slice against
/// the arena.
#[derive(Clone, Debug, Default)]
struct Seen {
    table: RawTable,
}

impl Seen {
    #[inline]
    fn get(&self, rows: &Rows, key: &[ValueId]) -> Option<u32> {
        self.table.find(hash_ids(key), |p| rows.get(p) == key)
    }

    /// Record `pos` (whose row must not already be present).
    fn insert(&mut self, rows: &Rows, pos: u32) {
        let h = hash_ids(rows.get(pos));
        self.table.ensure_cap(|p| hash_ids(rows.get(p)));
        self.table.insert(h, pos);
    }

    fn remove(&mut self, rows: &Rows, key: &[ValueId]) -> Option<u32> {
        let i = self
            .table
            .find_slot(hash_ids(key), |p| rows.get(p) == key)?;
        let pos = self.table.slots[i];
        self.table.delete_slot(i);
        Some(pos)
    }
}

/// An opaque handle to one of a relation's hash indexes (see
/// [`Relation::index`]).
#[derive(Clone, Copy, Debug)]
pub struct IndexRef<'a> {
    idx: &'a Index,
}

impl<'a> IndexRef<'a> {
    /// Insertion positions of all tuples whose projection equals `key` (ids
    /// in sorted column order). Borrowed key: a probe allocates nothing.
    pub fn probe(self, key: &[ValueId]) -> &'a [u32] {
        debug_assert_eq!(key.len(), self.idx.cols.len());
        self.idx.probe(key)
    }
}

/// The shard in `0..nshards` that owns the key `tuple[cols[0]],
/// tuple[cols[1]], …` — an FNV-style fold of each key value's
/// [`intern::struct_hash`]. Like the column sketches, the fold depends only
/// on value *structure*, never on raw id numbering, so shard assignment is
/// bit-for-bit identical across runs, worker counts, and interning orders.
pub fn shard_of_projection(cols: &[usize], tuple: &[ValueId], nshards: u32) -> u32 {
    debug_assert!(nshards > 0, "shard count must be positive");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in cols {
        h ^= intern::struct_hash(tuple[c]);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % u64::from(nshards)) as u32
}

/// [`shard_of_projection`] over an already-projected key (ids in key-column
/// order). The two agree whenever the key values are the projection: that
/// agreement is what lets a worker that owns shard `s` probe a shard-local
/// sub-index and see exactly the postings the full index would return.
pub fn shard_of_key(key: &[ValueId], nshards: u32) -> u32 {
    debug_assert!(nshards > 0, "shard count must be positive");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in key {
        h ^= intern::struct_hash(v);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % u64::from(nshards)) as u32
}

/// A hash index over a subset of columns, keyed by row position.
///
/// Maps the projection of a tuple onto `cols` to the positions (insertion
/// indices) of all tuples with that projection. The table stores bucket
/// handles; bucket `b`'s projected key lives at stride-`cols.len()` offset
/// `b` of the flat `keys` arena, immediately comparable against a borrowed
/// probe slice — a probe never touches the row arena, and the only
/// allocations are the amortized growth of `keys` and the posting lists
/// (nothing per tuple). Maintained incrementally as tuples are inserted.
#[derive(Clone, Debug)]
struct Index {
    cols: Vec<usize>,
    table: RawTable,
    /// Flat key arena: bucket `b`'s projected key ids are
    /// `keys[b*k .. (b+1)*k]` with `k = cols.len()`.
    keys: Vec<ValueId>,
    /// Posting lists (ascending positions). An empty list is a free
    /// bucket awaiting reuse via `free`.
    buckets: Vec<Vec<u32>>,
    free: Vec<u32>,
}

impl Index {
    fn new(cols: Vec<usize>) -> Index {
        Index {
            cols,
            table: RawTable::default(),
            keys: Vec::new(),
            buckets: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Bucket `b`'s projected key.
    #[inline]
    fn key_at(&self, b: u32) -> &[ValueId] {
        let k = self.cols.len();
        let at = b as usize * k;
        &self.keys[at..at + k]
    }

    fn probe(&self, key: &[ValueId]) -> &[u32] {
        let h = hash_ids(key);
        match self.table.find(h, |b| self.key_at(b) == key) {
            Some(b) => &self.buckets[b as usize],
            None => &[],
        }
    }

    fn add(&mut self, tuple: &[ValueId], pos: u32) {
        self.upsert(tuple, pos, false);
    }

    /// Re-insert `pos` into `tuple`'s posting list at its sorted slot —
    /// postings must stay ascending so probe results keep insertion order
    /// (the bit-for-bit determinism contract).
    fn add_sorted(&mut self, tuple: &[ValueId], pos: u32) {
        self.upsert(tuple, pos, true);
    }

    fn upsert(&mut self, tuple: &[ValueId], pos: u32, sorted: bool) {
        let h = hash_projection(&self.cols, tuple);
        if let Some(b) = self.table.find(h, |b| {
            self.cols
                .iter()
                .zip(self.key_at(b))
                .all(|(&c, &k)| tuple[c] == k)
        }) {
            let postings = &mut self.buckets[b as usize];
            if sorted {
                let at = postings.partition_point(|&p| p < pos);
                postings.insert(at, pos);
            } else {
                postings.push(pos);
            }
            return;
        }
        let (keys, k) = (&self.keys, self.cols.len());
        self.table
            .ensure_cap(|b| hash_ids(&keys[b as usize * k..(b as usize + 1) * k]));
        let b = match self.free.pop() {
            Some(b) => {
                let at = b as usize * k;
                for (slot, &c) in self.keys[at..at + k].iter_mut().zip(&self.cols) {
                    *slot = tuple[c];
                }
                b
            }
            None => {
                self.buckets.push(Vec::new());
                self.keys.extend(self.cols.iter().map(|&c| tuple[c]));
                (self.buckets.len() - 1) as u32
            }
        };
        self.buckets[b as usize].push(pos);
        self.table.insert(h, b);
    }

    /// Drop `pos` from the posting list of `tuple`'s key (tombstoning).
    fn remove(&mut self, tuple: &[ValueId], pos: u32) {
        let h = hash_projection(&self.cols, tuple);
        let Some(i) = self.table.find_slot(h, |b| {
            self.cols
                .iter()
                .zip(self.key_at(b))
                .all(|(&c, &k)| tuple[c] == k)
        }) else {
            return;
        };
        let b = self.table.slots[i];
        let postings = &mut self.buckets[b as usize];
        postings.retain(|&p| p != pos);
        if postings.is_empty() {
            self.table.delete_slot(i);
            self.free.push(b);
        }
    }

    /// Prune every posting at position `cutoff` or beyond and rebuild the
    /// table from the surviving buckets (truncation is the rare
    /// snapshot-rollback path). Freed buckets keep their stale key bytes;
    /// reuse overwrites them.
    fn truncate(&mut self, cutoff: u32) {
        self.table.clear();
        self.free.clear();
        for b in 0..self.buckets.len() {
            self.buckets[b].retain(|&p| p < cutoff);
            if self.buckets[b].is_empty() {
                self.free.push(b as u32);
                continue;
            }
            let h = hash_ids(self.key_at(b as u32));
            let (keys, k) = (&self.keys, self.cols.len());
            self.table
                .ensure_cap(|bb| hash_ids(&keys[bb as usize * k..(bb as usize + 1) * k]));
            self.table.insert(h, b as u32);
        }
    }
}

/// A hash index split into shard-local sub-indexes by [`shard_of_key`] of
/// the key projection. Each shard's sub-index holds exactly the posting
/// lists of the keys it owns, so a partitioned join worker probes a private
/// table — and because a key hashes to one shard, a probe routed to the
/// right shard returns the identical (ascending) posting list the full
/// index would. Maintained incrementally alongside the plain indexes.
#[derive(Clone, Debug)]
struct PartIndex {
    cols: Vec<usize>,
    nshards: u32,
    shards: Vec<Index>,
}

impl PartIndex {
    fn shard_of(&self, tuple: &[ValueId]) -> usize {
        shard_of_projection(&self.cols, tuple, self.nshards) as usize
    }

    fn add(&mut self, tuple: &[ValueId], pos: u32) {
        let s = self.shard_of(tuple);
        self.shards[s].add(tuple, pos);
    }

    fn remove(&mut self, tuple: &[ValueId], pos: u32) {
        let s = self.shard_of(tuple);
        self.shards[s].remove(tuple, pos);
    }

    fn add_sorted(&mut self, tuple: &[ValueId], pos: u32) {
        let s = self.shard_of(tuple);
        self.shards[s].add_sorted(tuple, pos);
    }
}

/// A fixed-width linear-counting sketch estimating the number of distinct
/// values in one column.
///
/// 256 one-bit bins (`[u64; 4]`, 32 bytes, allocated inline with the
/// relation — observing a value is a hash, a shift, and an OR, with no heap
/// traffic on the insert hot path). The classic linear-counting estimator
/// `m · ln(m / zeros)` recovers the distinct count from the zero-bin count
/// with good accuracy up to a few times `m`; a saturated sketch reports the
/// tuple count (i.e. "assume all distinct"), which errs toward full-scan
/// cost estimates rather than over-promising selectivity.
///
/// Values are observed through [`intern::struct_hash`], which depends only
/// on value *structure* — never on raw id numbering, which varies by run
/// and thread interleaving — so the sketch bits, and every plan choice
/// derived from them, are bit-for-bit reproducible at any worker count.
#[derive(Clone, Copy, Debug, Default)]
struct ColSketch {
    bits: [u64; 4],
}

/// Bin count of [`ColSketch`] (must match `bits` capacity).
const SKETCH_BINS: u32 = 256;

impl ColSketch {
    #[inline]
    fn observe(&mut self, v: ValueId) {
        let h = intern::struct_hash(v);
        let bin = (h % u64::from(SKETCH_BINS)) as usize;
        self.bits[bin / 64] |= 1u64 << (bin % 64);
    }

    /// Estimated distinct count, clamped to `[1, len]` (0 when `len == 0`).
    fn estimate(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let zeros = self
            .bits
            .iter()
            .map(|w| w.count_zeros() as u64)
            .sum::<u64>();
        let m = f64::from(SKETCH_BINS);
        let est = if zeros == 0 {
            len as f64 // saturated: assume all distinct
        } else {
            m * (m / zeros as f64).ln()
        };
        est.clamp(1.0, len as f64)
    }
}

/// An append-only, duplicate-free relation.
///
/// Tuples keep their insertion order and are never removed, so a *delta*
/// (the tuples derived since some point in time) is just the index range
/// `[mark, len)` — exactly what semi-naive evaluation needs. The same
/// property makes a contiguous sub-range `[lo, hi)` a well-defined slice of
/// work: the parallel evaluator partitions a delta into such slices, one
/// per worker, each reading through a shared `&Relation`. All reads are
/// `&self` with no interior mutability (enforced by the `Send + Sync`
/// assertion on `Database`), so a borrow shared across threads is safe.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    rows: Rows,
    /// Duplicate filter *and* position map (see [`Seen`]).
    seen: Seen,
    /// Tombstoned insertion positions. `None` (no heap) until the first
    /// removal — the append-only fast path never touches it. Positions are
    /// never reused, so deltas `[lo, hi)` and marks stay valid; readers
    /// skip dead positions via [`Relation::is_live`].
    dead: Option<Box<FastSet<u32>>>,
    /// Live tuple count: `rows.len - dead.len()`.
    live: usize,
    /// Per-position derivation counts (counting-based maintenance for
    /// non-recursive strata). `None` unless [`Relation::enable_counts`] was
    /// called; when present, a duplicate insert *increments* the existing
    /// position's count instead of being a pure no-op.
    counts: Option<Vec<u32>>,
    /// Keyed by the sorted, deduplicated column list (probed borrowed as
    /// `&[usize]`), so relations of any width can be indexed.
    indexes: FastMap<Vec<usize>, Index>,
    /// Shard-partitioned variants of indexes, keyed like `indexes`. Built
    /// only when partitioned join execution requests them
    /// ([`Relation::ensure_part_index`]); empty on the insert hot path
    /// otherwise.
    part_indexes: FastMap<Vec<usize>, PartIndex>,
    /// One distinct-count sketch per column, maintained on every insert.
    sketches: Vec<ColSketch>,
    /// Bumped whenever the relation's statistics have drifted enough to
    /// justify re-planning (a ~1.5× growth schedule — O(log n) bumps over a
    /// relation's lifetime), and on every truncation. Plan caches key on
    /// this.
    stats_epoch: u64,
    /// The tuple count at which the next epoch bump fires.
    next_epoch_len: usize,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            rows: Rows::new(arity),
            seen: Seen::default(),
            dead: None,
            live: 0,
            counts: None,
            indexes: FastMap::default(),
            part_indexes: FastMap::default(),
            sketches: vec![ColSketch::default(); arity],
            stats_epoch: 0,
            next_epoch_len: 1,
        }
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of insertion positions (including tombstoned ones). Stays
    /// *physical*: delta frontiers and snapshot marks are defined over this
    /// value, and removals must not shift them. For the number of facts the
    /// relation currently holds, see [`Relation::live_len`].
    pub fn len(&self) -> usize {
        self.rows.len as usize
    }

    /// Number of live (non-tombstoned) tuples.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Does the relation hold no live tuples?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Arena pages currently allocated.
    pub fn arena_pages(&self) -> usize {
        self.rows.pages.len()
    }

    /// Bytes of arena page memory currently reserved.
    pub fn arena_bytes(&self) -> usize {
        self.rows.bytes()
    }

    /// Insert an owned tuple; returns `true` iff it was new.
    #[deprecated(note = "use `insert_slice` — rows are copied into the arena, not shared")]
    #[allow(deprecated)]
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        self.insert_slice(&tuple)
    }

    /// Insert a borrowed tuple; returns `true` iff it was new. This is the
    /// merge-phase hot path: a rejected duplicate hashes the borrowed
    /// slice and compares it against the arena, and an accepted tuple is
    /// copied into the current arena page — neither side performs a
    /// per-tuple heap allocation (pages, tables, and posting lists
    /// amortize their growth). On a count-carrying relation a rejected
    /// duplicate still bumps the tuple's derivation count. Panics on arity
    /// mismatch (a schema violation is a caller bug, not data).
    pub fn insert_slice(&mut self, tuple: &[ValueId]) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if let Some(pos) = self.seen.get(&self.rows, tuple) {
            if let Some(counts) = &mut self.counts {
                counts[pos as usize] += 1;
            }
            return false;
        }
        assert!(self.rows.len < MAX_ROWS, "relation exceeds u32 tuples");
        let pos = self.rows.push(tuple);
        self.seen.insert(&self.rows, pos);
        for idx in self.indexes.values_mut() {
            idx.add(tuple, pos);
        }
        for pidx in self.part_indexes.values_mut() {
            pidx.add(tuple, pos);
        }
        for (sk, &v) in self.sketches.iter_mut().zip(tuple.iter()) {
            sk.observe(v);
        }
        if let Some(counts) = &mut self.counts {
            counts.push(1);
        }
        self.live += 1;
        if self.len() >= self.next_epoch_len {
            self.stats_epoch += 1;
            self.next_epoch_len = self.len() + (self.len() / 2).max(16);
        }
        true
    }

    /// Does the relation contain exactly this tuple (live — a tombstoned
    /// tuple is gone)?
    pub fn contains(&self, tuple: &[ValueId]) -> bool {
        self.seen.get(&self.rows, tuple).is_some()
    }

    /// The insertion position of a live tuple, if present.
    pub fn position_of(&self, tuple: &[ValueId]) -> Option<u32> {
        self.seen.get(&self.rows, tuple)
    }

    /// The row at insertion position `pos` (defined for tombstoned
    /// positions too — the row data is retained so rollback can revive
    /// it; scan loops filter with [`Relation::is_live`]).
    #[inline]
    pub fn get(&self, pos: u32) -> &[ValueId] {
        self.rows.get(pos)
    }

    /// Is insertion position `pos` live (not tombstoned)?
    #[inline]
    pub fn is_live(&self, pos: u32) -> bool {
        match &self.dead {
            None => true,
            Some(d) => !d.contains(&pos),
        }
    }

    /// All live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[ValueId]> + '_ {
        (0..self.rows.len)
            .filter(|&pos| self.is_live(pos))
            .map(|pos| self.rows.get(pos))
    }

    /// Tuples in the insertion range `[from, to)` — a delta. Physical: a
    /// delta range is always freshly inserted (hence live) when consumed;
    /// callers walking historical ranges must filter with
    /// [`Relation::is_live`].
    pub fn range(&self, from: usize, to: usize) -> impl Iterator<Item = &[ValueId]> + '_ {
        debug_assert!(from <= to && to <= self.len());
        (from as u32..to as u32).map(|pos| self.rows.get(pos))
    }

    /// Tombstone a live tuple: removes it from the duplicate filter and
    /// every index posting list, marks its position dead, and bumps the
    /// statistics epoch. The position itself (and the row data) is
    /// retained so outstanding marks/deltas stay valid and
    /// [`Relation::revive`] can restore the exact pre-removal state.
    /// Returns the tombstoned position, or `None` if the tuple was not
    /// live.
    pub fn remove_slice(&mut self, tuple: &[ValueId]) -> Option<u32> {
        let pos = self.seen.remove(&self.rows, tuple)?;
        self.dead.get_or_insert_with(Default::default).insert(pos);
        self.live -= 1;
        let rows = &self.rows;
        for idx in self.indexes.values_mut() {
            idx.remove(rows.get(pos), pos);
        }
        for pidx in self.part_indexes.values_mut() {
            pidx.remove(rows.get(pos), pos);
        }
        self.stats_epoch += 1;
        Some(pos)
    }

    /// Undo a tombstone: restore position `pos` to the duplicate filter and
    /// index posting lists (at its sorted slot, so probe order is exactly
    /// the pre-removal order — rollback is bit-identical). No-op if `pos`
    /// is not tombstoned.
    pub fn revive(&mut self, pos: u32) {
        if !self.dead.as_mut().is_some_and(|d| d.remove(&pos)) {
            return;
        }
        let rows = &self.rows;
        for idx in self.indexes.values_mut() {
            idx.add_sorted(rows.get(pos), pos);
        }
        for pidx in self.part_indexes.values_mut() {
            pidx.add_sorted(rows.get(pos), pos);
        }
        self.seen.insert(&self.rows, pos);
        self.live += 1;
        self.stats_epoch += 1;
    }

    /// Start carrying per-tuple derivation counts (counting-based
    /// maintenance). Existing tuples are assigned count 1; from here on a
    /// duplicate insert increments the tuple's count instead of being a
    /// pure no-op, so the semi-naive merge phase records multiplicities as
    /// a side effect. Idempotent.
    pub fn enable_counts(&mut self) {
        if self.counts.is_none() {
            self.counts = Some(vec![1; self.len()]);
        }
    }

    /// Does this relation carry derivation counts?
    pub fn counts_enabled(&self) -> bool {
        self.counts.is_some()
    }

    /// The derivation count at position `pos`. Panics unless
    /// [`Relation::enable_counts`] was called.
    pub fn count_at(&self, pos: u32) -> u32 {
        self.counts.as_ref().expect("counts not enabled")[pos as usize]
    }

    /// Decrement the derivation count at `pos` by `by` (saturating) and
    /// return the new count. The caller tombstones the tuple when this
    /// reaches zero. Panics unless counts are enabled.
    pub fn decrement_count(&mut self, pos: u32, by: u32) -> u32 {
        let c = &mut self.counts.as_mut().expect("counts not enabled")[pos as usize];
        *c = c.saturating_sub(by);
        *c
    }

    /// Ensure a hash index exists on `cols` (sorted, deduplicated by caller
    /// convention — we normalize anyway). No-op if already present.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        let mut cols: Vec<usize> = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "index column out of range"
        );
        if self.indexes.contains_key(cols.as_slice()) {
            return;
        }
        let mut idx = Index::new(cols.clone());
        // Skip tombstoned positions: an index built after a removal must
        // agree with one that witnessed it (probes never check liveness).
        // `revive` re-adds the position to every index, so a later rollback
        // still restores the pre-removal posting lists exactly.
        for pos in 0..self.rows.len {
            if self.dead.as_ref().is_some_and(|d| d.contains(&pos)) {
                continue;
            }
            idx.add(self.rows.get(pos), pos);
        }
        self.indexes.insert(cols, idx);
    }

    /// Ensure a shard-partitioned index exists on `cols` with exactly
    /// `nshards` shards ([`shard_of_key`] routing). A partitioned index
    /// with a different shard count is rebuilt; otherwise this is a no-op.
    /// Like [`Relation::ensure_index`], tombstoned positions are skipped so
    /// a shard probe never needs a liveness check.
    pub fn ensure_part_index(&mut self, cols: &[usize], nshards: u32) {
        assert!(nshards > 0, "shard count must be positive");
        let mut cols: Vec<usize> = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "index column out of range"
        );
        if self
            .part_indexes
            .get(cols.as_slice())
            .is_some_and(|p| p.nshards == nshards)
        {
            return;
        }
        let mut pidx = PartIndex {
            cols: cols.clone(),
            nshards,
            shards: (0..nshards).map(|_| Index::new(cols.clone())).collect(),
        };
        for pos in 0..self.rows.len {
            if self.dead.as_ref().is_some_and(|d| d.contains(&pos)) {
                continue;
            }
            pidx.add(self.rows.get(pos), pos);
        }
        self.part_indexes.insert(cols, pidx);
    }

    /// Shard `shard` of the partitioned index on `cols`, if one exists with
    /// exactly `nshards` shards. The handle probes like any [`IndexRef`];
    /// it answers correctly only for keys that hash to `shard`.
    pub fn part_shard(&self, cols: &[usize], nshards: u32, shard: u32) -> Option<IndexRef<'_>> {
        let pidx = self.part_indexes.get(cols)?;
        if pidx.nshards != nshards {
            return None;
        }
        pidx.shards.get(shard as usize).map(|idx| IndexRef { idx })
    }

    /// Probe the index on `cols` (which must exist) with `key` ids in the
    /// same (sorted) column order. Returns matching insertion positions.
    /// Both the column list and the key are borrowed — a probe allocates
    /// nothing.
    pub fn probe(&self, cols: &[usize], key: &[ValueId]) -> &[u32] {
        self.index(cols)
            .expect("probe of a non-existent index; call ensure_index first")
            .probe(key)
    }

    /// The index on `cols`, if one exists — resolve the column list once,
    /// then probe through the handle (one hash of `cols` instead of one per
    /// probe).
    pub fn index(&self, cols: &[usize]) -> Option<IndexRef<'_>> {
        self.indexes.get(cols).map(|idx| IndexRef { idx })
    }

    /// Does an index exist on `cols`?
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(cols)
    }

    /// The statistics epoch: bumped when tuple count / distinct-value
    /// statistics have drifted enough (≈1.5× growth, or any truncation)
    /// that cost-based plans built against older statistics should be
    /// reconsidered. Monotone per relation *state* — two databases in the
    /// same logical state can disagree on the epoch value, but within one
    /// evaluation the sequence of epochs observed between rounds is
    /// deterministic.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Estimated number of distinct values in column `col` (linear-counting
    /// sketch, clamped to `[1, live_len]`; `0.0` for an empty relation).
    pub fn distinct_estimate(&self, col: usize) -> f64 {
        self.sketches[col].estimate(self.live)
    }

    /// Estimated number of distinct *combinations* over `cols`: the product
    /// of the per-column estimates, capped at the tuple count. The
    /// independence assumption overestimates distinctness for correlated
    /// columns, which errs toward predicting *fewer* matching rows — the
    /// same bias every textbook System-R-style estimator accepts.
    pub fn key_distinct_estimate(&self, cols: &[usize]) -> f64 {
        if self.live == 0 {
            return 0.0;
        }
        let len = self.live as f64;
        let mut combo = 1.0f64;
        for &c in cols {
            combo *= self.sketches[c].estimate(self.live);
            if combo >= len {
                return len;
            }
        }
        combo.clamp(1.0, len)
    }

    /// Discard every tuple at insertion position `len` or beyond, restoring
    /// the relation to an earlier snapshot (see [`Relation::len`], whose
    /// value is exactly such a snapshot mark). Hash indexes and the
    /// duplicate filter are pruned in place; positions below `len` keep
    /// their identities, so outstanding delta ranges `[lo, hi)` with
    /// `hi <= len` stay valid. No-op if `len >= self.len()`.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        let cutoff = len as u32;
        // Tombstones at or beyond the cutoff die with their positions;
        // tombstones below it survive (rollback revives them separately).
        if let Some(d) = &mut self.dead {
            d.retain(|&p| p < cutoff);
            if d.is_empty() {
                self.dead = None;
            }
        }
        // Forget each dropped row from the duplicate filter — but only if
        // its *live* position is being dropped: the same value may also
        // sit tombstoned below the cutoff. Must run before the arena is
        // truncated (the filter compares against row data).
        for pos in cutoff..self.rows.len {
            let row = self.rows.get(pos);
            if self.seen.get(&self.rows, row).is_some_and(|p| p >= cutoff) {
                self.seen.remove(&self.rows, row);
            }
        }
        self.rows.truncate(cutoff);
        if let Some(counts) = &mut self.counts {
            counts.truncate(len);
        }
        self.live = len - self.dead.as_ref().map_or(0, |d| d.len());
        for idx in self.indexes.values_mut() {
            idx.truncate(cutoff);
        }
        for pidx in self.part_indexes.values_mut() {
            for idx in &mut pidx.shards {
                idx.truncate(cutoff);
            }
        }
        // Sketch bits cannot be un-set per dropped tuple; rebuild them from
        // the surviving live tuples (truncation is the rare
        // snapshot-rollback path, never the insert hot path) and invalidate
        // cached plans.
        for sk in &mut self.sketches {
            *sk = ColSketch::default();
        }
        for pos in 0..self.rows.len {
            if self.dead.as_ref().is_some_and(|d| d.contains(&pos)) {
                continue;
            }
            for (sk, &v) in self.sketches.iter_mut().zip(self.rows.get(pos)) {
                sk.observe(v);
            }
        }
        self.stats_epoch += 1;
        self.next_epoch_len = self.len() + (self.len() / 2).max(16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_value::intern;
    use ldl_value::Value;

    fn id(v: i64) -> ValueId {
        intern::mk_int(v)
    }

    fn t(vals: &[i64]) -> Vec<ValueId> {
        vals.iter().map(|&v| id(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert_slice(&t(&[1, 2])));
        assert!(!r.insert_slice(&t(&[1, 2])));
        assert!(r.insert_slice(&t(&[1, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[id(1), id(2)]));
        assert!(!r.contains(&[id(2), id(1)]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert_slice(&t(&[1]));
    }

    #[test]
    fn index_probe() {
        let mut r = Relation::new(2);
        r.insert_slice(&t(&[1, 10]));
        r.insert_slice(&t(&[1, 20]));
        r.insert_slice(&t(&[2, 30]));
        r.ensure_index(&[0]);
        let hits = r.probe(&[0], &[id(1)]);
        assert_eq!(hits.len(), 2);
        assert_eq!(r.get(hits[0])[1], id(10));
        assert_eq!(r.get(hits[1])[1], id(20));
        assert!(r.probe(&[0], &[id(9)]).is_empty());
    }

    #[test]
    fn index_maintained_incrementally() {
        let mut r = Relation::new(2);
        r.ensure_index(&[1]);
        r.insert_slice(&t(&[1, 10]));
        r.insert_slice(&t(&[2, 10]));
        assert_eq!(r.probe(&[1], &[id(10)]).len(), 2);
        r.insert_slice(&t(&[3, 10]));
        assert_eq!(r.probe(&[1], &[id(10)]).len(), 3);
    }

    #[test]
    fn multi_column_index_key_order_is_sorted_cols() {
        let mut r = Relation::new(3);
        r.insert_slice(&t(&[1, 2, 3]));
        r.ensure_index(&[2, 0]); // normalized to [0, 2]
        assert!(r.has_index(&[0, 2]));
        let hits = r.probe(&[0, 2], &[id(1), id(3)]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn wide_relations_index_beyond_column_64() {
        // Regression: the index registry used a u64 column bitmask and
        // panicked on any column ≥ 64.
        let arity = 70;
        let mut r = Relation::new(arity);
        r.insert_slice(&(0..arity as i64).map(id).collect::<Vec<_>>());
        r.insert_slice(&(100..100 + arity as i64).map(id).collect::<Vec<_>>());
        r.ensure_index(&[68]);
        assert!(r.has_index(&[68]));
        assert_eq!(r.probe(&[68], &[id(68)]).len(), 1);
        assert_eq!(r.probe(&[68], &[id(168)]).len(), 1);
        assert!(r.probe(&[68], &[id(999)]).is_empty());
        r.ensure_index(&[1, 69]);
        assert_eq!(r.probe(&[1, 69], &[id(101), id(169)]), &[1]);
    }

    #[test]
    fn ranges_are_deltas() {
        let mut r = Relation::new(1);
        r.insert_slice(&t(&[1]));
        let mark = r.len();
        r.insert_slice(&t(&[2]));
        r.insert_slice(&t(&[1])); // duplicate, not part of the delta
        r.insert_slice(&t(&[3]));
        let delta: Vec<Vec<ValueId>> = r.range(mark, r.len()).map(<[ValueId]>::to_vec).collect();
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0][0], id(2));
        assert_eq!(delta[1][0], id(3));
    }

    #[test]
    fn truncate_restores_snapshot() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        r.insert_slice(&t(&[1, 10]));
        r.insert_slice(&t(&[1, 20]));
        let mark = r.len();
        r.insert_slice(&t(&[1, 30]));
        r.insert_slice(&t(&[2, 40]));
        assert_eq!(r.probe(&[0], &[id(1)]).len(), 3);

        r.truncate(mark);
        assert_eq!(r.len(), 2);
        // Duplicate filter forgets the dropped tuples…
        assert!(!r.contains(&[id(1), id(30)]));
        assert!(r.insert_slice(&t(&[1, 30])));
        // …and indexes are pruned: the (2, 40) posting list is gone, the
        // re-inserted (1, 30) shows up again.
        r.truncate(2);
        assert!(r.probe(&[0], &[id(2)]).is_empty());
        assert_eq!(r.probe(&[0], &[id(1)]).len(), 2);
        // Truncating beyond the end is a no-op.
        r.truncate(99);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arena_pages_grow_and_truncate() {
        let mut r = Relation::new(3);
        assert_eq!(r.arena_pages(), 0);
        let per_page = 1usize << Rows::new(3).shift;
        for x in 0..(2 * per_page + 3) as i64 {
            r.insert_slice(&t(&[x, x + 1, x + 2]));
        }
        assert_eq!(r.arena_pages(), 3);
        assert!(r.arena_bytes() >= 3 * per_page * std::mem::size_of::<ValueId>());
        // Row addressing is stable across page boundaries.
        let boundary = per_page as u32;
        assert_eq!(r.get(boundary - 1)[0], id(per_page as i64 - 1));
        assert_eq!(r.get(boundary)[0], id(per_page as i64));
        // Truncating to a page boundary drops whole pages; to mid-page
        // keeps the partial page.
        r.truncate(per_page + 1);
        assert_eq!(r.arena_pages(), 2);
        r.truncate(per_page);
        assert_eq!(r.arena_pages(), 1);
        assert!(r.insert_slice(&t(&[9999, 0, 0])));
        assert_eq!(r.get(per_page as u32)[0], id(9999));
    }

    #[test]
    fn distinct_estimates_track_column_cardinality() {
        let mut r = Relation::new(2);
        for x in 0..600 {
            r.insert_slice(&t(&[x, x % 4])); // column 0: 600 distinct, column 1: 4
        }
        assert_eq!(r.distinct_estimate(0), 600.0, "saturated sketch → len");
        let low = r.distinct_estimate(1);
        assert!((1.0..=12.0).contains(&low), "4-distinct column got {low}");
        // Key combo: capped product, never above len.
        assert!(r.key_distinct_estimate(&[0, 1]) <= 600.0);
        assert!(r.key_distinct_estimate(&[1]) <= 12.0);
        assert_eq!(Relation::new(2).distinct_estimate(0), 0.0);
    }

    #[test]
    fn distinct_estimate_small_relation_is_accurate() {
        let mut r = Relation::new(1);
        for x in 0..20 {
            r.insert_slice(&t(&[x]));
        }
        let est = r.distinct_estimate(0);
        assert!((15.0..=25.0).contains(&est), "20 distinct estimated {est}");
    }

    #[test]
    fn stats_epoch_bumps_geometrically_and_on_truncate() {
        let mut r = Relation::new(1);
        assert_eq!(r.stats_epoch(), 0);
        r.insert_slice(&t(&[0]));
        let e1 = r.stats_epoch();
        assert_eq!(e1, 1, "first insert crosses the initial threshold");
        for x in 1..1000 {
            r.insert_slice(&t(&[x]));
        }
        let grown = r.stats_epoch();
        // ~1.5× growth schedule: far fewer epochs than inserts.
        assert!(
            grown > e1 && grown < 25,
            "epoch after 1000 inserts: {grown}"
        );
        // Duplicates never bump (len does not change).
        let before = r.stats_epoch();
        r.insert_slice(&t(&[5]));
        assert_eq!(r.stats_epoch(), before);

        r.truncate(10);
        assert!(r.stats_epoch() > grown, "truncate must invalidate plans");
        // Sketches rebuilt from survivors: estimate reflects 10 tuples.
        assert!(r.distinct_estimate(0) <= 10.0);
    }

    #[test]
    fn set_valued_columns_sketch_structurally() {
        use ldl_value::Value;
        let mut r = Relation::new(1);
        // Same canonical set inserted via two surface orders is one value…
        let s12 = intern::id_of(&Value::set(vec![Value::int(1), Value::int(2)]));
        r.insert_slice(&[s12]);
        let one = r.distinct_estimate(0);
        assert!((0.9..=1.5).contains(&one));
    }

    #[test]
    fn zero_arity_relation_holds_one_tuple() {
        let mut r = Relation::new(0);
        assert!(r.insert_slice(&[]));
        assert!(!r.insert_slice(&[]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(0), &[] as &[ValueId]);
        assert_eq!(r.iter().count(), 1);
        assert_eq!(r.arena_bytes(), 0);
    }

    #[test]
    fn remove_tombstones_and_revive_restores() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        r.insert_slice(&t(&[1, 10]));
        r.insert_slice(&t(&[1, 20]));
        r.insert_slice(&t(&[2, 30]));
        let pos = r.remove_slice(&[id(1), id(10)]).unwrap();
        assert_eq!(pos, 0);
        assert_eq!(r.len(), 3, "len stays physical");
        assert_eq!(r.live_len(), 2);
        assert!(!r.contains(&[id(1), id(10)]));
        assert!(!r.is_live(0) && r.is_live(1) && r.is_live(2));
        // Index postings are pruned eagerly…
        assert_eq!(r.probe(&[0], &[id(1)]), &[1]);
        // …and iter skips the tombstone.
        assert_eq!(r.iter().count(), 2);
        // Removing a non-member (or the same tuple twice) is None.
        assert!(r.remove_slice(&[id(1), id(10)]).is_none());
        assert!(r.remove_slice(&[id(9), id(9)]).is_none());

        r.revive(pos);
        assert!(r.contains(&[id(1), id(10)]));
        assert_eq!(r.live_len(), 3);
        // Posting order is restored ascending, not appended.
        assert_eq!(r.probe(&[0], &[id(1)]), &[0, 1]);
        r.revive(pos); // double revive is a no-op
        assert_eq!(r.live_len(), 3);
    }

    #[test]
    fn removed_tuple_can_be_reinserted_at_new_position() {
        let mut r = Relation::new(1);
        r.insert_slice(&t(&[7]));
        r.remove_slice(&[id(7)]).unwrap();
        assert!(
            r.insert_slice(&t(&[7])),
            "tombstoned tuple is re-insertable"
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.live_len(), 1);
        assert_eq!(r.position_of(&[id(7)]), Some(1));
    }

    #[test]
    fn truncate_interacts_with_tombstones() {
        let mut r = Relation::new(1);
        r.insert_slice(&t(&[1]));
        r.insert_slice(&t(&[2]));
        let p1 = r.remove_slice(&[id(1)]).unwrap();
        let mark = r.len();
        r.insert_slice(&t(&[1])); // revived-by-reinsert above the mark
        r.insert_slice(&t(&[3]));
        r.remove_slice(&[id(3)]).unwrap();

        r.truncate(mark);
        // The pre-mark tombstone survives; post-mark state is gone.
        assert_eq!(r.len(), 2);
        assert_eq!(r.live_len(), 1);
        assert!(!r.contains(&[id(1)]));
        assert!(r.contains(&[id(2)]));
        r.revive(p1);
        assert!(r.contains(&[id(1)]));
        assert_eq!(r.live_len(), 2);
    }

    #[test]
    fn counts_track_duplicate_insertions() {
        let mut r = Relation::new(1);
        r.insert_slice(&t(&[1]));
        r.enable_counts();
        assert!(r.counts_enabled());
        assert_eq!(r.count_at(0), 1, "existing tuples start at count 1");
        r.insert_slice(&t(&[1])); // duplicate → increment
        r.insert_slice(&[id(1)]);
        assert_eq!(r.count_at(0), 3);
        r.insert_slice(&t(&[2]));
        assert_eq!(r.count_at(1), 1);
        assert_eq!(r.decrement_count(0, 2), 1);
        assert_eq!(r.decrement_count(0, 1), 0);
        // Count 0 is the caller's cue to tombstone; storage doesn't do it.
        assert!(r.contains(&[id(1)]));
        r.enable_counts(); // idempotent: counts survive
        assert_eq!(r.count_at(1), 1);
    }

    #[test]
    fn estimates_follow_live_count() {
        let mut r = Relation::new(1);
        for x in 0..20 {
            r.insert_slice(&t(&[x]));
        }
        for x in 0..19 {
            r.remove_slice(&[id(x)]);
        }
        assert!(r.distinct_estimate(0) <= 1.0);
        assert_eq!(r.key_distinct_estimate(&[0]), 1.0);
        r.remove_slice(&[id(19)]);
        assert!(r.is_empty());
        assert_eq!(r.key_distinct_estimate(&[0]), 0.0);
    }

    #[test]
    fn part_index_shards_cover_full_index() {
        let nshards = 4;
        let mut r = Relation::new(2);
        for x in 0..200 {
            r.insert_slice(&t(&[x % 20, x]));
        }
        r.ensure_index(&[0]);
        r.ensure_part_index(&[0], nshards);
        for key_val in 0..20 {
            let key = [id(key_val)];
            let full = r.probe(&[0], &key).to_vec();
            let s = shard_of_key(&key, nshards);
            let shard = r.part_shard(&[0], nshards, s).unwrap();
            // The owning shard returns the identical ascending posting
            // list; every other shard returns nothing for this key.
            assert_eq!(shard.probe(&key), full);
            for other in (0..nshards).filter(|&o| o != s) {
                assert!(r
                    .part_shard(&[0], nshards, other)
                    .unwrap()
                    .probe(&key)
                    .is_empty());
            }
        }
        // A different shard count is not served stale.
        assert!(r.part_shard(&[0], 8, 0).is_none());
        r.ensure_part_index(&[0], 8);
        let key = [id(3)];
        let s8 = shard_of_key(&key, 8);
        assert_eq!(
            r.part_shard(&[0], 8, s8).unwrap().probe(&key),
            r.probe(&[0], &key)
        );
    }

    #[test]
    fn part_index_maintained_on_insert_remove_revive_truncate() {
        let nshards = 3;
        let mut r = Relation::new(2);
        r.ensure_part_index(&[0], nshards);
        r.insert_slice(&t(&[1, 10]));
        r.insert_slice(&t(&[1, 20]));
        let mark = r.len();
        r.insert_slice(&t(&[1, 30]));
        let key = [id(1)];
        let s = shard_of_key(&key, nshards);
        let probe = |r: &Relation| -> Vec<u32> {
            r.part_shard(&[0], nshards, s).unwrap().probe(&key).to_vec()
        };
        assert_eq!(probe(&r), vec![0, 1, 2]);

        let pos = r.remove_slice(&[id(1), id(10)]).unwrap();
        assert_eq!(probe(&r), vec![1, 2]);
        r.revive(pos);
        assert_eq!(probe(&r), vec![0, 1, 2], "revive restores sorted slot");

        r.truncate(mark);
        assert_eq!(probe(&r), vec![0, 1]);
        // An index built after removals skips tombstones, like ensure_index.
        r.remove_slice(&[id(1), id(10)]).unwrap();
        let mut fresh = r.clone();
        fresh.ensure_part_index(&[1], nshards);
        let k20 = [id(20)];
        let s20 = shard_of_key(&k20, nshards);
        assert_eq!(
            fresh.part_shard(&[1], nshards, s20).unwrap().probe(&k20),
            &[1]
        );
        let k10 = [id(10)];
        let s10 = shard_of_key(&k10, nshards);
        assert!(fresh
            .part_shard(&[1], nshards, s10)
            .unwrap()
            .probe(&k10)
            .is_empty());
    }

    #[test]
    fn shard_routing_is_structural_and_total() {
        // Every key lands in range, and the projection/key forms agree.
        let mut r = Relation::new(2);
        for x in 0..50 {
            r.insert_slice(&t(&[x, x * 2]));
        }
        for x in 0..50i64 {
            let s = shard_of_key(&[id(x)], 7);
            assert!(s < 7);
            assert_eq!(shard_of_projection(&[0], &t(&[x, x * 2]), 7), s);
        }
        // Canonical sets shard by structure: {2,1} routes like {1,2}.
        let s12 = intern::id_of(&Value::set(vec![Value::int(1), Value::int(2)]));
        let s21 = intern::id_of(&Value::set(vec![Value::int(2), Value::int(1)]));
        assert_eq!(shard_of_key(&[s12], 5), shard_of_key(&[s21], 5));
    }

    #[test]
    fn set_valued_columns_index_correctly() {
        let mut r = Relation::new(2);
        let s12 = intern::id_of(&Value::set(vec![Value::int(1), Value::int(2)]));
        let s21 = intern::id_of(&Value::set(vec![Value::int(2), Value::int(1)]));
        r.insert_slice(&[intern::id_of(&Value::atom("a")), s12]);
        r.ensure_index(&[1]);
        // Canonical sets: {2,1} interns equal to {1,2}.
        assert_eq!(r.probe(&[1], &[s21]).len(), 1);
    }
}
