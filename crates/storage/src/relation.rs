//! Append-only relations with hash indexes.
//!
//! Tuples are stored as interned [`ValueId`]s: the duplicate filter and
//! every index probe hash and compare a few `u32`s regardless of how deep
//! the underlying values are. Structural [`ldl_value::Value`]s exist only
//! at the [`crate::Database`] fact boundary.

use std::sync::Arc;

use ldl_value::fxhash::{FastMap, FastSet};
use ldl_value::{intern, ValueId};

/// A ground tuple of interned values. Cheap to clone (shared allocation).
pub type Tuple = Arc<[ValueId]>;

/// An opaque handle to one of a relation's hash indexes (see
/// [`Relation::index`]).
#[derive(Clone, Copy, Debug)]
pub struct IndexRef<'a>(&'a Index);

impl<'a> IndexRef<'a> {
    /// Insertion positions of all tuples whose projection equals `key` (ids
    /// in sorted column order). Borrowed key: a probe allocates nothing.
    pub fn probe(self, key: &[ValueId]) -> &'a [u32] {
        debug_assert_eq!(key.len(), self.0.cols.len());
        self.0.map.get(key).map_or(&[], |v| &v[..])
    }
}

/// A hash index over a subset of columns.
///
/// Maps the projection of a tuple onto `cols` to the positions (insertion
/// indices) of all tuples with that projection. Maintained incrementally as
/// tuples are inserted.
#[derive(Clone, Debug)]
struct Index {
    cols: Vec<usize>,
    map: FastMap<Box<[ValueId]>, Vec<u32>>,
}

impl Index {
    fn add(&mut self, tuple: &[ValueId], pos: u32) {
        let key: Box<[ValueId]> = self.cols.iter().map(|&c| tuple[c]).collect();
        self.map.entry(key).or_default().push(pos);
    }
}

/// A fixed-width linear-counting sketch estimating the number of distinct
/// values in one column.
///
/// 256 one-bit bins (`[u64; 4]`, 32 bytes, allocated inline with the
/// relation — observing a value is a hash, a shift, and an OR, with no heap
/// traffic on the insert hot path). The classic linear-counting estimator
/// `m · ln(m / zeros)` recovers the distinct count from the zero-bin count
/// with good accuracy up to a few times `m`; a saturated sketch reports the
/// tuple count (i.e. "assume all distinct"), which errs toward full-scan
/// cost estimates rather than over-promising selectivity.
///
/// Values are observed through [`intern::struct_hash`], which depends only
/// on value *structure* — never on raw id numbering, which varies by run
/// and thread interleaving — so the sketch bits, and every plan choice
/// derived from them, are bit-for-bit reproducible at any worker count.
#[derive(Clone, Copy, Debug, Default)]
struct ColSketch {
    bits: [u64; 4],
}

/// Bin count of [`ColSketch`] (must match `bits` capacity).
const SKETCH_BINS: u32 = 256;

impl ColSketch {
    #[inline]
    fn observe(&mut self, v: ValueId) {
        let h = intern::struct_hash(v);
        let bin = (h % u64::from(SKETCH_BINS)) as usize;
        self.bits[bin / 64] |= 1u64 << (bin % 64);
    }

    /// Estimated distinct count, clamped to `[1, len]` (0 when `len == 0`).
    fn estimate(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let zeros = self
            .bits
            .iter()
            .map(|w| w.count_zeros() as u64)
            .sum::<u64>();
        let m = f64::from(SKETCH_BINS);
        let est = if zeros == 0 {
            len as f64 // saturated: assume all distinct
        } else {
            m * (m / zeros as f64).ln()
        };
        est.clamp(1.0, len as f64)
    }
}

/// An append-only, duplicate-free relation.
///
/// Tuples keep their insertion order and are never removed, so a *delta*
/// (the tuples derived since some point in time) is just the index range
/// `[mark, len)` — exactly what semi-naive evaluation needs. The same
/// property makes a contiguous sub-range `[lo, hi)` a well-defined slice of
/// work: the parallel evaluator partitions a delta into such slices, one
/// per worker, each reading through a shared `&Relation`. All reads are
/// `&self` with no interior mutability (enforced by the `Send + Sync`
/// assertion on `Database`), so a borrow shared across threads is safe.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    seen: FastSet<Tuple>,
    /// Keyed by the sorted, deduplicated column list (probed borrowed as
    /// `&[usize]`), so relations of any width can be indexed.
    indexes: FastMap<Vec<usize>, Index>,
    /// One distinct-count sketch per column, maintained on every insert.
    sketches: Vec<ColSketch>,
    /// Bumped whenever the relation's statistics have drifted enough to
    /// justify re-planning (a ~1.5× growth schedule — O(log n) bumps over a
    /// relation's lifetime), and on every truncation. Plan caches key on
    /// this.
    stats_epoch: u64,
    /// The tuple count at which the next epoch bump fires.
    next_epoch_len: usize,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
            seen: FastSet::default(),
            indexes: FastMap::default(),
            sketches: vec![ColSketch::default(); arity],
            stats_epoch: 0,
            next_epoch_len: 1,
        }
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` iff it was new. Panics on arity
    /// mismatch (a schema violation is a caller bug, not data).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if !self.seen.insert(Arc::clone(&tuple)) {
            return false;
        }
        let pos = u32::try_from(self.tuples.len()).expect("relation exceeds u32 tuples");
        for idx in self.indexes.values_mut() {
            idx.add(&tuple, pos);
        }
        for (sk, &v) in self.sketches.iter_mut().zip(tuple.iter()) {
            sk.observe(v);
        }
        self.tuples.push(tuple);
        if self.tuples.len() >= self.next_epoch_len {
            self.stats_epoch += 1;
            self.next_epoch_len = self.tuples.len() + (self.tuples.len() / 2).max(16);
        }
        true
    }

    /// Insert a borrowed tuple; returns `true` iff it was new. The
    /// duplicate probe happens on the borrowed slice, so a rejected
    /// duplicate allocates nothing — this is the merge-phase hot path,
    /// where semi-naive evaluation rejects most derivations.
    pub fn insert_slice(&mut self, tuple: &[ValueId]) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if self.seen.contains(tuple) {
            return false;
        }
        self.insert(Tuple::from(tuple))
    }

    /// Does the relation contain exactly this tuple?
    pub fn contains(&self, tuple: &[ValueId]) -> bool {
        // FastSet<Arc<[ValueId]>> can be probed with a borrowed slice
        // because Arc<[ValueId]>: Borrow<[ValueId]>.
        self.seen.contains(tuple)
    }

    /// The tuple at insertion position `pos`.
    pub fn get(&self, pos: u32) -> &Tuple {
        &self.tuples[pos as usize]
    }

    /// All tuples in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Tuples in the insertion range `[from, to)` — a delta.
    pub fn range(&self, from: usize, to: usize) -> &[Tuple] {
        &self.tuples[from..to]
    }

    /// Ensure a hash index exists on `cols` (sorted, deduplicated by caller
    /// convention — we normalize anyway). No-op if already present.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        let mut cols: Vec<usize> = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "index column out of range"
        );
        if self.indexes.contains_key(cols.as_slice()) {
            return;
        }
        let mut idx = Index {
            cols: cols.clone(),
            map: FastMap::default(),
        };
        for (pos, t) in self.tuples.iter().enumerate() {
            idx.add(t, pos as u32);
        }
        self.indexes.insert(cols, idx);
    }

    /// Probe the index on `cols` (which must exist) with `key` ids in the
    /// same (sorted) column order. Returns matching insertion positions.
    /// Both the column list and the key are borrowed — a probe allocates
    /// nothing.
    pub fn probe(&self, cols: &[usize], key: &[ValueId]) -> &[u32] {
        self.index(cols)
            .expect("probe of a non-existent index; call ensure_index first")
            .probe(key)
    }

    /// The index on `cols`, if one exists — resolve the column list once,
    /// then probe through the handle (one hash of `cols` instead of one per
    /// probe).
    pub fn index(&self, cols: &[usize]) -> Option<IndexRef<'_>> {
        self.indexes.get(cols).map(IndexRef)
    }

    /// Does an index exist on `cols`?
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(cols)
    }

    /// The statistics epoch: bumped when tuple count / distinct-value
    /// statistics have drifted enough (≈1.5× growth, or any truncation)
    /// that cost-based plans built against older statistics should be
    /// reconsidered. Monotone per relation *state* — two databases in the
    /// same logical state can disagree on the epoch value, but within one
    /// evaluation the sequence of epochs observed between rounds is
    /// deterministic.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Estimated number of distinct values in column `col` (linear-counting
    /// sketch, clamped to `[1, len]`; `0.0` for an empty relation).
    pub fn distinct_estimate(&self, col: usize) -> f64 {
        self.sketches[col].estimate(self.tuples.len())
    }

    /// Estimated number of distinct *combinations* over `cols`: the product
    /// of the per-column estimates, capped at the tuple count. The
    /// independence assumption overestimates distinctness for correlated
    /// columns, which errs toward predicting *fewer* matching rows — the
    /// same bias every textbook System-R-style estimator accepts.
    pub fn key_distinct_estimate(&self, cols: &[usize]) -> f64 {
        if self.tuples.is_empty() {
            return 0.0;
        }
        let len = self.tuples.len() as f64;
        let mut combo = 1.0f64;
        for &c in cols {
            combo *= self.sketches[c].estimate(self.tuples.len());
            if combo >= len {
                return len;
            }
        }
        combo.clamp(1.0, len)
    }

    /// Discard every tuple at insertion position `len` or beyond, restoring
    /// the relation to an earlier snapshot (see [`Relation::len`], whose
    /// value is exactly such a snapshot mark). Hash indexes and the
    /// duplicate filter are pruned in place; positions below `len` keep
    /// their identities, so outstanding delta ranges `[lo, hi)` with
    /// `hi <= len` stay valid. No-op if `len >= self.len()`.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.tuples.len() {
            return;
        }
        for dropped in self.tuples.drain(len..) {
            self.seen.remove(&dropped);
        }
        let cutoff = len as u32;
        for idx in self.indexes.values_mut() {
            idx.map.retain(|_, postings| {
                postings.retain(|&pos| pos < cutoff);
                !postings.is_empty()
            });
        }
        // Sketch bits cannot be un-set per dropped tuple; rebuild them from
        // the surviving tuples (truncation is the rare snapshot-rollback
        // path, never the insert hot path) and invalidate cached plans.
        for sk in &mut self.sketches {
            *sk = ColSketch::default();
        }
        for t in &self.tuples {
            for (sk, &v) in self.sketches.iter_mut().zip(t.iter()) {
                sk.observe(v);
            }
        }
        self.stats_epoch += 1;
        self.next_epoch_len = self.tuples.len() + (self.tuples.len() / 2).max(16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_value::intern;
    use ldl_value::Value;

    fn id(v: i64) -> ValueId {
        intern::mk_int(v)
    }

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| id(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.insert(t(&[1, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[id(1), id(2)]));
        assert!(!r.contains(&[id(2), id(1)]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }

    #[test]
    fn index_probe() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 20]));
        r.insert(t(&[2, 30]));
        r.ensure_index(&[0]);
        let hits = r.probe(&[0], &[id(1)]);
        assert_eq!(hits.len(), 2);
        assert_eq!(r.get(hits[0])[1], id(10));
        assert_eq!(r.get(hits[1])[1], id(20));
        assert!(r.probe(&[0], &[id(9)]).is_empty());
    }

    #[test]
    fn index_maintained_incrementally() {
        let mut r = Relation::new(2);
        r.ensure_index(&[1]);
        r.insert(t(&[1, 10]));
        r.insert(t(&[2, 10]));
        assert_eq!(r.probe(&[1], &[id(10)]).len(), 2);
        r.insert(t(&[3, 10]));
        assert_eq!(r.probe(&[1], &[id(10)]).len(), 3);
    }

    #[test]
    fn multi_column_index_key_order_is_sorted_cols() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3]));
        r.ensure_index(&[2, 0]); // normalized to [0, 2]
        assert!(r.has_index(&[0, 2]));
        let hits = r.probe(&[0, 2], &[id(1), id(3)]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn wide_relations_index_beyond_column_64() {
        // Regression: the index registry used a u64 column bitmask and
        // panicked on any column ≥ 64.
        let arity = 70;
        let mut r = Relation::new(arity);
        r.insert((0..arity as i64).map(id).collect());
        r.insert((100..100 + arity as i64).map(id).collect());
        r.ensure_index(&[68]);
        assert!(r.has_index(&[68]));
        assert_eq!(r.probe(&[68], &[id(68)]).len(), 1);
        assert_eq!(r.probe(&[68], &[id(168)]).len(), 1);
        assert!(r.probe(&[68], &[id(999)]).is_empty());
        r.ensure_index(&[1, 69]);
        assert_eq!(r.probe(&[1, 69], &[id(101), id(169)]), &[1]);
    }

    #[test]
    fn ranges_are_deltas() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        let mark = r.len();
        r.insert(t(&[2]));
        r.insert(t(&[1])); // duplicate, not part of the delta
        r.insert(t(&[3]));
        let delta = r.range(mark, r.len());
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0][0], id(2));
        assert_eq!(delta[1][0], id(3));
    }

    #[test]
    fn truncate_restores_snapshot() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 20]));
        let mark = r.len();
        r.insert(t(&[1, 30]));
        r.insert(t(&[2, 40]));
        assert_eq!(r.probe(&[0], &[id(1)]).len(), 3);

        r.truncate(mark);
        assert_eq!(r.len(), 2);
        // Duplicate filter forgets the dropped tuples…
        assert!(!r.contains(&[id(1), id(30)]));
        assert!(r.insert(t(&[1, 30])));
        // …and indexes are pruned: the (2, 40) posting list is gone, the
        // re-inserted (1, 30) shows up again.
        r.truncate(2);
        assert!(r.probe(&[0], &[id(2)]).is_empty());
        assert_eq!(r.probe(&[0], &[id(1)]).len(), 2);
        // Truncating beyond the end is a no-op.
        r.truncate(99);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn distinct_estimates_track_column_cardinality() {
        let mut r = Relation::new(2);
        for x in 0..600 {
            r.insert(t(&[x, x % 4])); // column 0: 600 distinct, column 1: 4
        }
        assert_eq!(r.distinct_estimate(0), 600.0, "saturated sketch → len");
        let low = r.distinct_estimate(1);
        assert!((1.0..=12.0).contains(&low), "4-distinct column got {low}");
        // Key combo: capped product, never above len.
        assert!(r.key_distinct_estimate(&[0, 1]) <= 600.0);
        assert!(r.key_distinct_estimate(&[1]) <= 12.0);
        assert_eq!(Relation::new(2).distinct_estimate(0), 0.0);
    }

    #[test]
    fn distinct_estimate_small_relation_is_accurate() {
        let mut r = Relation::new(1);
        for x in 0..20 {
            r.insert(t(&[x]));
        }
        let est = r.distinct_estimate(0);
        assert!((15.0..=25.0).contains(&est), "20 distinct estimated {est}");
    }

    #[test]
    fn stats_epoch_bumps_geometrically_and_on_truncate() {
        let mut r = Relation::new(1);
        assert_eq!(r.stats_epoch(), 0);
        r.insert(t(&[0]));
        let e1 = r.stats_epoch();
        assert_eq!(e1, 1, "first insert crosses the initial threshold");
        for x in 1..1000 {
            r.insert(t(&[x]));
        }
        let grown = r.stats_epoch();
        // ~1.5× growth schedule: far fewer epochs than inserts.
        assert!(
            grown > e1 && grown < 25,
            "epoch after 1000 inserts: {grown}"
        );
        // Duplicates never bump (len does not change).
        let before = r.stats_epoch();
        r.insert(t(&[5]));
        assert_eq!(r.stats_epoch(), before);

        r.truncate(10);
        assert!(r.stats_epoch() > grown, "truncate must invalidate plans");
        // Sketches rebuilt from survivors: estimate reflects 10 tuples.
        assert!(r.distinct_estimate(0) <= 10.0);
    }

    #[test]
    fn set_valued_columns_sketch_structurally() {
        use ldl_value::Value;
        let mut r = Relation::new(1);
        // Same canonical set inserted via two surface orders is one value…
        let s12 = intern::id_of(&Value::set(vec![Value::int(1), Value::int(2)]));
        r.insert(Arc::from(vec![s12]));
        let one = r.distinct_estimate(0);
        assert!((0.9..=1.5).contains(&one));
    }

    #[test]
    fn zero_arity_relation_holds_one_tuple() {
        let mut r = Relation::new(0);
        let empty: Tuple = Arc::from(Vec::<ValueId>::new());
        assert!(r.insert(Arc::clone(&empty)));
        assert!(!r.insert(empty));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn set_valued_columns_index_correctly() {
        let mut r = Relation::new(2);
        let s12 = intern::id_of(&Value::set(vec![Value::int(1), Value::int(2)]));
        let s21 = intern::id_of(&Value::set(vec![Value::int(2), Value::int(1)]));
        r.insert(Arc::from(vec![intern::id_of(&Value::atom("a")), s12]));
        r.ensure_index(&[1]);
        // Canonical sets: {2,1} interns equal to {1,2}.
        assert_eq!(r.probe(&[1], &[s21]).len(), 1);
    }
}
