//! Append-only relations with hash indexes.
//!
//! Tuples are stored as interned [`ValueId`]s: the duplicate filter and
//! every index probe hash and compare a few `u32`s regardless of how deep
//! the underlying values are. Structural [`ldl_value::Value`]s exist only
//! at the [`crate::Database`] fact boundary.

use std::sync::Arc;

use ldl_value::fxhash::{FastMap, FastSet};
use ldl_value::{intern, ValueId};

/// A ground tuple of interned values. Cheap to clone (shared allocation).
pub type Tuple = Arc<[ValueId]>;

/// An opaque handle to one of a relation's hash indexes (see
/// [`Relation::index`]).
#[derive(Clone, Copy, Debug)]
pub struct IndexRef<'a>(&'a Index);

impl<'a> IndexRef<'a> {
    /// Insertion positions of all tuples whose projection equals `key` (ids
    /// in sorted column order). Borrowed key: a probe allocates nothing.
    pub fn probe(self, key: &[ValueId]) -> &'a [u32] {
        debug_assert_eq!(key.len(), self.0.cols.len());
        self.0.map.get(key).map_or(&[], |v| &v[..])
    }
}

/// The shard in `0..nshards` that owns the key `tuple[cols[0]],
/// tuple[cols[1]], …` — an FNV-style fold of each key value's
/// [`intern::struct_hash`]. Like the column sketches, the fold depends only
/// on value *structure*, never on raw id numbering, so shard assignment is
/// bit-for-bit identical across runs, worker counts, and interning orders.
pub fn shard_of_projection(cols: &[usize], tuple: &[ValueId], nshards: u32) -> u32 {
    debug_assert!(nshards > 0, "shard count must be positive");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in cols {
        h ^= intern::struct_hash(tuple[c]);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % u64::from(nshards)) as u32
}

/// [`shard_of_projection`] over an already-projected key (ids in key-column
/// order). The two agree whenever the key values are the projection: that
/// agreement is what lets a worker that owns shard `s` probe a shard-local
/// sub-index and see exactly the postings the full index would return.
pub fn shard_of_key(key: &[ValueId], nshards: u32) -> u32 {
    debug_assert!(nshards > 0, "shard count must be positive");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in key {
        h ^= intern::struct_hash(v);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % u64::from(nshards)) as u32
}

/// A hash index over a subset of columns.
///
/// Maps the projection of a tuple onto `cols` to the positions (insertion
/// indices) of all tuples with that projection. Maintained incrementally as
/// tuples are inserted.
#[derive(Clone, Debug)]
struct Index {
    cols: Vec<usize>,
    map: FastMap<Box<[ValueId]>, Vec<u32>>,
}

/// A hash index split into shard-local sub-indexes by [`shard_of_key`] of
/// the key projection. Each shard's sub-index holds exactly the posting
/// lists of the keys it owns, so a partitioned join worker probes a private
/// map — and because a key hashes to one shard, a probe routed to the right
/// shard returns the identical (ascending) posting list the full index
/// would. Maintained incrementally alongside the plain indexes.
#[derive(Clone, Debug)]
struct PartIndex {
    cols: Vec<usize>,
    nshards: u32,
    shards: Vec<Index>,
}

impl PartIndex {
    fn shard_of(&self, tuple: &[ValueId]) -> usize {
        shard_of_projection(&self.cols, tuple, self.nshards) as usize
    }

    fn add(&mut self, tuple: &[ValueId], pos: u32) {
        let s = self.shard_of(tuple);
        self.shards[s].add(tuple, pos);
    }

    fn remove(&mut self, tuple: &[ValueId], pos: u32) {
        let s = self.shard_of(tuple);
        self.shards[s].remove(tuple, pos);
    }

    fn add_sorted(&mut self, tuple: &[ValueId], pos: u32) {
        let s = self.shard_of(tuple);
        self.shards[s].add_sorted(tuple, pos);
    }
}

impl Index {
    fn add(&mut self, tuple: &[ValueId], pos: u32) {
        let key: Box<[ValueId]> = self.cols.iter().map(|&c| tuple[c]).collect();
        self.map.entry(key).or_default().push(pos);
    }

    /// Drop `pos` from the posting list of `tuple`'s key (tombstoning).
    fn remove(&mut self, tuple: &[ValueId], pos: u32) {
        let key: Box<[ValueId]> = self.cols.iter().map(|&c| tuple[c]).collect();
        if let Some(postings) = self.map.get_mut(&key) {
            postings.retain(|&p| p != pos);
            if postings.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Re-insert `pos` into `tuple`'s posting list at its sorted slot —
    /// postings must stay ascending so probe results keep insertion order
    /// (the bit-for-bit determinism contract).
    fn add_sorted(&mut self, tuple: &[ValueId], pos: u32) {
        let key: Box<[ValueId]> = self.cols.iter().map(|&c| tuple[c]).collect();
        let postings = self.map.entry(key).or_default();
        let slot = postings.partition_point(|&p| p < pos);
        postings.insert(slot, pos);
    }
}

/// A fixed-width linear-counting sketch estimating the number of distinct
/// values in one column.
///
/// 256 one-bit bins (`[u64; 4]`, 32 bytes, allocated inline with the
/// relation — observing a value is a hash, a shift, and an OR, with no heap
/// traffic on the insert hot path). The classic linear-counting estimator
/// `m · ln(m / zeros)` recovers the distinct count from the zero-bin count
/// with good accuracy up to a few times `m`; a saturated sketch reports the
/// tuple count (i.e. "assume all distinct"), which errs toward full-scan
/// cost estimates rather than over-promising selectivity.
///
/// Values are observed through [`intern::struct_hash`], which depends only
/// on value *structure* — never on raw id numbering, which varies by run
/// and thread interleaving — so the sketch bits, and every plan choice
/// derived from them, are bit-for-bit reproducible at any worker count.
#[derive(Clone, Copy, Debug, Default)]
struct ColSketch {
    bits: [u64; 4],
}

/// Bin count of [`ColSketch`] (must match `bits` capacity).
const SKETCH_BINS: u32 = 256;

impl ColSketch {
    #[inline]
    fn observe(&mut self, v: ValueId) {
        let h = intern::struct_hash(v);
        let bin = (h % u64::from(SKETCH_BINS)) as usize;
        self.bits[bin / 64] |= 1u64 << (bin % 64);
    }

    /// Estimated distinct count, clamped to `[1, len]` (0 when `len == 0`).
    fn estimate(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let zeros = self
            .bits
            .iter()
            .map(|w| w.count_zeros() as u64)
            .sum::<u64>();
        let m = f64::from(SKETCH_BINS);
        let est = if zeros == 0 {
            len as f64 // saturated: assume all distinct
        } else {
            m * (m / zeros as f64).ln()
        };
        est.clamp(1.0, len as f64)
    }
}

/// An append-only, duplicate-free relation.
///
/// Tuples keep their insertion order and are never removed, so a *delta*
/// (the tuples derived since some point in time) is just the index range
/// `[mark, len)` — exactly what semi-naive evaluation needs. The same
/// property makes a contiguous sub-range `[lo, hi)` a well-defined slice of
/// work: the parallel evaluator partitions a delta into such slices, one
/// per worker, each reading through a shared `&Relation`. All reads are
/// `&self` with no interior mutability (enforced by the `Send + Sync`
/// assertion on `Database`), so a borrow shared across threads is safe.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    /// Duplicate filter *and* position map: each live tuple maps to its
    /// insertion position. Removed (tombstoned) tuples are absent, so
    /// `contains`/`position_of` see only live facts.
    seen: FastMap<Tuple, u32>,
    /// Tombstoned insertion positions. `None` (no heap) until the first
    /// removal — the append-only fast path never touches it. Positions are
    /// never reused, so deltas `[lo, hi)` and marks stay valid; readers
    /// skip dead positions via [`Relation::is_live`].
    dead: Option<Box<FastSet<u32>>>,
    /// Live tuple count: `tuples.len() - dead.len()`.
    live: usize,
    /// Per-position derivation counts (counting-based maintenance for
    /// non-recursive strata). `None` unless [`Relation::enable_counts`] was
    /// called; when present, a duplicate insert *increments* the existing
    /// position's count instead of being a pure no-op.
    counts: Option<Vec<u32>>,
    /// Keyed by the sorted, deduplicated column list (probed borrowed as
    /// `&[usize]`), so relations of any width can be indexed.
    indexes: FastMap<Vec<usize>, Index>,
    /// Shard-partitioned variants of indexes, keyed like `indexes`. Built
    /// only when partitioned join execution requests them
    /// ([`Relation::ensure_part_index`]); empty on the insert hot path
    /// otherwise.
    part_indexes: FastMap<Vec<usize>, PartIndex>,
    /// One distinct-count sketch per column, maintained on every insert.
    sketches: Vec<ColSketch>,
    /// Bumped whenever the relation's statistics have drifted enough to
    /// justify re-planning (a ~1.5× growth schedule — O(log n) bumps over a
    /// relation's lifetime), and on every truncation. Plan caches key on
    /// this.
    stats_epoch: u64,
    /// The tuple count at which the next epoch bump fires.
    next_epoch_len: usize,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
            seen: FastMap::default(),
            dead: None,
            live: 0,
            counts: None,
            indexes: FastMap::default(),
            part_indexes: FastMap::default(),
            sketches: vec![ColSketch::default(); arity],
            stats_epoch: 0,
            next_epoch_len: 1,
        }
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of insertion positions (including tombstoned ones). Stays
    /// *physical*: delta frontiers and snapshot marks are defined over this
    /// value, and removals must not shift them. For the number of facts the
    /// relation currently holds, see [`Relation::live_len`].
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Number of live (non-tombstoned) tuples.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Does the relation hold no live tuples?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a tuple; returns `true` iff it was new. Panics on arity
    /// mismatch (a schema violation is a caller bug, not data).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if let Some(&pos) = self.seen.get(tuple.as_ref() as &[ValueId]) {
            if let Some(counts) = &mut self.counts {
                counts[pos as usize] += 1;
            }
            return false;
        }
        let pos = u32::try_from(self.tuples.len()).expect("relation exceeds u32 tuples");
        self.seen.insert(Arc::clone(&tuple), pos);
        for idx in self.indexes.values_mut() {
            idx.add(&tuple, pos);
        }
        for pidx in self.part_indexes.values_mut() {
            pidx.add(&tuple, pos);
        }
        for (sk, &v) in self.sketches.iter_mut().zip(tuple.iter()) {
            sk.observe(v);
        }
        self.tuples.push(tuple);
        if let Some(counts) = &mut self.counts {
            counts.push(1);
        }
        self.live += 1;
        if self.tuples.len() >= self.next_epoch_len {
            self.stats_epoch += 1;
            self.next_epoch_len = self.tuples.len() + (self.tuples.len() / 2).max(16);
        }
        true
    }

    /// Insert a borrowed tuple; returns `true` iff it was new. The
    /// duplicate probe happens on the borrowed slice, so a rejected
    /// duplicate allocates nothing — this is the merge-phase hot path,
    /// where semi-naive evaluation rejects most derivations. On a
    /// count-carrying relation the rejected duplicate still bumps the
    /// tuple's derivation count.
    pub fn insert_slice(&mut self, tuple: &[ValueId]) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if let Some(&pos) = self.seen.get(tuple) {
            if let Some(counts) = &mut self.counts {
                counts[pos as usize] += 1;
            }
            return false;
        }
        self.insert(Tuple::from(tuple))
    }

    /// Does the relation contain exactly this tuple (live — a tombstoned
    /// tuple is gone)?
    pub fn contains(&self, tuple: &[ValueId]) -> bool {
        // FastMap<Arc<[ValueId]>, u32> can be probed with a borrowed slice
        // because Arc<[ValueId]>: Borrow<[ValueId]>.
        self.seen.contains_key(tuple)
    }

    /// The insertion position of a live tuple, if present.
    pub fn position_of(&self, tuple: &[ValueId]) -> Option<u32> {
        self.seen.get(tuple).copied()
    }

    /// The tuple at insertion position `pos` (defined for tombstoned
    /// positions too — the tuple data is retained so rollback can revive
    /// it; scan loops filter with [`Relation::is_live`]).
    pub fn get(&self, pos: u32) -> &Tuple {
        &self.tuples[pos as usize]
    }

    /// Is insertion position `pos` live (not tombstoned)?
    #[inline]
    pub fn is_live(&self, pos: u32) -> bool {
        match &self.dead {
            None => true,
            Some(d) => !d.contains(&pos),
        }
    }

    /// All live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples
            .iter()
            .enumerate()
            .filter(|&(pos, _)| self.is_live(pos as u32))
            .map(|(_, t)| t)
    }

    /// Tuples in the insertion range `[from, to)` — a delta. Physical: a
    /// delta range is always freshly inserted (hence live) when consumed;
    /// callers walking historical ranges must filter with
    /// [`Relation::is_live`].
    pub fn range(&self, from: usize, to: usize) -> &[Tuple] {
        &self.tuples[from..to]
    }

    /// Tombstone a live tuple: removes it from the duplicate filter and
    /// every index posting list, marks its position dead, and bumps the
    /// statistics epoch. The position itself (and the tuple data) is
    /// retained so outstanding marks/deltas stay valid and
    /// [`Relation::revive`] can restore the exact pre-removal state.
    /// Returns the tombstoned position, or `None` if the tuple was not
    /// live.
    pub fn remove_slice(&mut self, tuple: &[ValueId]) -> Option<u32> {
        let pos = self.seen.remove(tuple)?;
        self.dead.get_or_insert_with(Default::default).insert(pos);
        self.live -= 1;
        let t = Arc::clone(&self.tuples[pos as usize]);
        for idx in self.indexes.values_mut() {
            idx.remove(&t, pos);
        }
        for pidx in self.part_indexes.values_mut() {
            pidx.remove(&t, pos);
        }
        self.stats_epoch += 1;
        Some(pos)
    }

    /// Undo a tombstone: restore position `pos` to the duplicate filter and
    /// index posting lists (at its sorted slot, so probe order is exactly
    /// the pre-removal order — rollback is bit-identical). No-op if `pos`
    /// is not tombstoned.
    pub fn revive(&mut self, pos: u32) {
        if !self.dead.as_mut().is_some_and(|d| d.remove(&pos)) {
            return;
        }
        let t = Arc::clone(&self.tuples[pos as usize]);
        for idx in self.indexes.values_mut() {
            idx.add_sorted(&t, pos);
        }
        for pidx in self.part_indexes.values_mut() {
            pidx.add_sorted(&t, pos);
        }
        self.seen.insert(t, pos);
        self.live += 1;
        self.stats_epoch += 1;
    }

    /// Start carrying per-tuple derivation counts (counting-based
    /// maintenance). Existing tuples are assigned count 1; from here on a
    /// duplicate insert increments the tuple's count instead of being a
    /// pure no-op, so the semi-naive merge phase records multiplicities as
    /// a side effect. Idempotent.
    pub fn enable_counts(&mut self) {
        if self.counts.is_none() {
            self.counts = Some(vec![1; self.tuples.len()]);
        }
    }

    /// Does this relation carry derivation counts?
    pub fn counts_enabled(&self) -> bool {
        self.counts.is_some()
    }

    /// The derivation count at position `pos`. Panics unless
    /// [`Relation::enable_counts`] was called.
    pub fn count_at(&self, pos: u32) -> u32 {
        self.counts.as_ref().expect("counts not enabled")[pos as usize]
    }

    /// Decrement the derivation count at `pos` by `by` (saturating) and
    /// return the new count. The caller tombstones the tuple when this
    /// reaches zero. Panics unless counts are enabled.
    pub fn decrement_count(&mut self, pos: u32, by: u32) -> u32 {
        let c = &mut self.counts.as_mut().expect("counts not enabled")[pos as usize];
        *c = c.saturating_sub(by);
        *c
    }

    /// Ensure a hash index exists on `cols` (sorted, deduplicated by caller
    /// convention — we normalize anyway). No-op if already present.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        let mut cols: Vec<usize> = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "index column out of range"
        );
        if self.indexes.contains_key(cols.as_slice()) {
            return;
        }
        let mut idx = Index {
            cols: cols.clone(),
            map: FastMap::default(),
        };
        // Skip tombstoned positions: an index built after a removal must
        // agree with one that witnessed it (probes never check liveness).
        // `revive` re-adds the position to every index, so a later rollback
        // still restores the pre-removal posting lists exactly.
        for (pos, t) in self.tuples.iter().enumerate() {
            if self
                .dead
                .as_ref()
                .is_some_and(|d| d.contains(&(pos as u32)))
            {
                continue;
            }
            idx.add(t, pos as u32);
        }
        self.indexes.insert(cols, idx);
    }

    /// Ensure a shard-partitioned index exists on `cols` with exactly
    /// `nshards` shards ([`shard_of_key`] routing). A partitioned index
    /// with a different shard count is rebuilt; otherwise this is a no-op.
    /// Like [`Relation::ensure_index`], tombstoned positions are skipped so
    /// a shard probe never needs a liveness check.
    pub fn ensure_part_index(&mut self, cols: &[usize], nshards: u32) {
        assert!(nshards > 0, "shard count must be positive");
        let mut cols: Vec<usize> = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "index column out of range"
        );
        if self
            .part_indexes
            .get(cols.as_slice())
            .is_some_and(|p| p.nshards == nshards)
        {
            return;
        }
        let mut pidx = PartIndex {
            cols: cols.clone(),
            nshards,
            shards: (0..nshards)
                .map(|_| Index {
                    cols: cols.clone(),
                    map: FastMap::default(),
                })
                .collect(),
        };
        for (pos, t) in self.tuples.iter().enumerate() {
            if self
                .dead
                .as_ref()
                .is_some_and(|d| d.contains(&(pos as u32)))
            {
                continue;
            }
            pidx.add(t, pos as u32);
        }
        self.part_indexes.insert(cols, pidx);
    }

    /// Shard `shard` of the partitioned index on `cols`, if one exists with
    /// exactly `nshards` shards. The handle probes like any [`IndexRef`];
    /// it answers correctly only for keys that hash to `shard`.
    pub fn part_shard(&self, cols: &[usize], nshards: u32, shard: u32) -> Option<IndexRef<'_>> {
        let pidx = self.part_indexes.get(cols)?;
        if pidx.nshards != nshards {
            return None;
        }
        pidx.shards.get(shard as usize).map(IndexRef)
    }

    /// Probe the index on `cols` (which must exist) with `key` ids in the
    /// same (sorted) column order. Returns matching insertion positions.
    /// Both the column list and the key are borrowed — a probe allocates
    /// nothing.
    pub fn probe(&self, cols: &[usize], key: &[ValueId]) -> &[u32] {
        self.index(cols)
            .expect("probe of a non-existent index; call ensure_index first")
            .probe(key)
    }

    /// The index on `cols`, if one exists — resolve the column list once,
    /// then probe through the handle (one hash of `cols` instead of one per
    /// probe).
    pub fn index(&self, cols: &[usize]) -> Option<IndexRef<'_>> {
        self.indexes.get(cols).map(IndexRef)
    }

    /// Does an index exist on `cols`?
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(cols)
    }

    /// The statistics epoch: bumped when tuple count / distinct-value
    /// statistics have drifted enough (≈1.5× growth, or any truncation)
    /// that cost-based plans built against older statistics should be
    /// reconsidered. Monotone per relation *state* — two databases in the
    /// same logical state can disagree on the epoch value, but within one
    /// evaluation the sequence of epochs observed between rounds is
    /// deterministic.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Estimated number of distinct values in column `col` (linear-counting
    /// sketch, clamped to `[1, live_len]`; `0.0` for an empty relation).
    pub fn distinct_estimate(&self, col: usize) -> f64 {
        self.sketches[col].estimate(self.live)
    }

    /// Estimated number of distinct *combinations* over `cols`: the product
    /// of the per-column estimates, capped at the tuple count. The
    /// independence assumption overestimates distinctness for correlated
    /// columns, which errs toward predicting *fewer* matching rows — the
    /// same bias every textbook System-R-style estimator accepts.
    pub fn key_distinct_estimate(&self, cols: &[usize]) -> f64 {
        if self.live == 0 {
            return 0.0;
        }
        let len = self.live as f64;
        let mut combo = 1.0f64;
        for &c in cols {
            combo *= self.sketches[c].estimate(self.live);
            if combo >= len {
                return len;
            }
        }
        combo.clamp(1.0, len)
    }

    /// Discard every tuple at insertion position `len` or beyond, restoring
    /// the relation to an earlier snapshot (see [`Relation::len`], whose
    /// value is exactly such a snapshot mark). Hash indexes and the
    /// duplicate filter are pruned in place; positions below `len` keep
    /// their identities, so outstanding delta ranges `[lo, hi)` with
    /// `hi <= len` stay valid. No-op if `len >= self.len()`.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.tuples.len() {
            return;
        }
        let cutoff = len as u32;
        // Tombstones at or beyond the cutoff die with their positions;
        // tombstones below it survive (rollback revives them separately).
        if let Some(d) = &mut self.dead {
            d.retain(|&p| p < cutoff);
            if d.is_empty() {
                self.dead = None;
            }
        }
        for dropped in self.tuples.drain(len..) {
            // Forget the tuple only if its *live* position is being dropped
            // — the same value may also sit tombstoned below the cutoff.
            if (self.seen.get(dropped.as_ref() as &[ValueId])).is_some_and(|&p| p >= cutoff) {
                self.seen.remove(dropped.as_ref() as &[ValueId]);
            }
        }
        if let Some(counts) = &mut self.counts {
            counts.truncate(len);
        }
        self.live = len - self.dead.as_ref().map_or(0, |d| d.len());
        for idx in self.indexes.values_mut() {
            idx.map.retain(|_, postings| {
                postings.retain(|&pos| pos < cutoff);
                !postings.is_empty()
            });
        }
        for pidx in self.part_indexes.values_mut() {
            for idx in &mut pidx.shards {
                idx.map.retain(|_, postings| {
                    postings.retain(|&pos| pos < cutoff);
                    !postings.is_empty()
                });
            }
        }
        // Sketch bits cannot be un-set per dropped tuple; rebuild them from
        // the surviving live tuples (truncation is the rare
        // snapshot-rollback path, never the insert hot path) and invalidate
        // cached plans.
        for sk in &mut self.sketches {
            *sk = ColSketch::default();
        }
        for (pos, t) in self.tuples.iter().enumerate() {
            if self
                .dead
                .as_ref()
                .is_some_and(|d| d.contains(&(pos as u32)))
            {
                continue;
            }
            for (sk, &v) in self.sketches.iter_mut().zip(t.iter()) {
                sk.observe(v);
            }
        }
        self.stats_epoch += 1;
        self.next_epoch_len = self.tuples.len() + (self.tuples.len() / 2).max(16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_value::intern;
    use ldl_value::Value;

    fn id(v: i64) -> ValueId {
        intern::mk_int(v)
    }

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| id(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.insert(t(&[1, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[id(1), id(2)]));
        assert!(!r.contains(&[id(2), id(1)]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }

    #[test]
    fn index_probe() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 20]));
        r.insert(t(&[2, 30]));
        r.ensure_index(&[0]);
        let hits = r.probe(&[0], &[id(1)]);
        assert_eq!(hits.len(), 2);
        assert_eq!(r.get(hits[0])[1], id(10));
        assert_eq!(r.get(hits[1])[1], id(20));
        assert!(r.probe(&[0], &[id(9)]).is_empty());
    }

    #[test]
    fn index_maintained_incrementally() {
        let mut r = Relation::new(2);
        r.ensure_index(&[1]);
        r.insert(t(&[1, 10]));
        r.insert(t(&[2, 10]));
        assert_eq!(r.probe(&[1], &[id(10)]).len(), 2);
        r.insert(t(&[3, 10]));
        assert_eq!(r.probe(&[1], &[id(10)]).len(), 3);
    }

    #[test]
    fn multi_column_index_key_order_is_sorted_cols() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3]));
        r.ensure_index(&[2, 0]); // normalized to [0, 2]
        assert!(r.has_index(&[0, 2]));
        let hits = r.probe(&[0, 2], &[id(1), id(3)]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn wide_relations_index_beyond_column_64() {
        // Regression: the index registry used a u64 column bitmask and
        // panicked on any column ≥ 64.
        let arity = 70;
        let mut r = Relation::new(arity);
        r.insert((0..arity as i64).map(id).collect());
        r.insert((100..100 + arity as i64).map(id).collect());
        r.ensure_index(&[68]);
        assert!(r.has_index(&[68]));
        assert_eq!(r.probe(&[68], &[id(68)]).len(), 1);
        assert_eq!(r.probe(&[68], &[id(168)]).len(), 1);
        assert!(r.probe(&[68], &[id(999)]).is_empty());
        r.ensure_index(&[1, 69]);
        assert_eq!(r.probe(&[1, 69], &[id(101), id(169)]), &[1]);
    }

    #[test]
    fn ranges_are_deltas() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        let mark = r.len();
        r.insert(t(&[2]));
        r.insert(t(&[1])); // duplicate, not part of the delta
        r.insert(t(&[3]));
        let delta = r.range(mark, r.len());
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0][0], id(2));
        assert_eq!(delta[1][0], id(3));
    }

    #[test]
    fn truncate_restores_snapshot() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 20]));
        let mark = r.len();
        r.insert(t(&[1, 30]));
        r.insert(t(&[2, 40]));
        assert_eq!(r.probe(&[0], &[id(1)]).len(), 3);

        r.truncate(mark);
        assert_eq!(r.len(), 2);
        // Duplicate filter forgets the dropped tuples…
        assert!(!r.contains(&[id(1), id(30)]));
        assert!(r.insert(t(&[1, 30])));
        // …and indexes are pruned: the (2, 40) posting list is gone, the
        // re-inserted (1, 30) shows up again.
        r.truncate(2);
        assert!(r.probe(&[0], &[id(2)]).is_empty());
        assert_eq!(r.probe(&[0], &[id(1)]).len(), 2);
        // Truncating beyond the end is a no-op.
        r.truncate(99);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn distinct_estimates_track_column_cardinality() {
        let mut r = Relation::new(2);
        for x in 0..600 {
            r.insert(t(&[x, x % 4])); // column 0: 600 distinct, column 1: 4
        }
        assert_eq!(r.distinct_estimate(0), 600.0, "saturated sketch → len");
        let low = r.distinct_estimate(1);
        assert!((1.0..=12.0).contains(&low), "4-distinct column got {low}");
        // Key combo: capped product, never above len.
        assert!(r.key_distinct_estimate(&[0, 1]) <= 600.0);
        assert!(r.key_distinct_estimate(&[1]) <= 12.0);
        assert_eq!(Relation::new(2).distinct_estimate(0), 0.0);
    }

    #[test]
    fn distinct_estimate_small_relation_is_accurate() {
        let mut r = Relation::new(1);
        for x in 0..20 {
            r.insert(t(&[x]));
        }
        let est = r.distinct_estimate(0);
        assert!((15.0..=25.0).contains(&est), "20 distinct estimated {est}");
    }

    #[test]
    fn stats_epoch_bumps_geometrically_and_on_truncate() {
        let mut r = Relation::new(1);
        assert_eq!(r.stats_epoch(), 0);
        r.insert(t(&[0]));
        let e1 = r.stats_epoch();
        assert_eq!(e1, 1, "first insert crosses the initial threshold");
        for x in 1..1000 {
            r.insert(t(&[x]));
        }
        let grown = r.stats_epoch();
        // ~1.5× growth schedule: far fewer epochs than inserts.
        assert!(
            grown > e1 && grown < 25,
            "epoch after 1000 inserts: {grown}"
        );
        // Duplicates never bump (len does not change).
        let before = r.stats_epoch();
        r.insert(t(&[5]));
        assert_eq!(r.stats_epoch(), before);

        r.truncate(10);
        assert!(r.stats_epoch() > grown, "truncate must invalidate plans");
        // Sketches rebuilt from survivors: estimate reflects 10 tuples.
        assert!(r.distinct_estimate(0) <= 10.0);
    }

    #[test]
    fn set_valued_columns_sketch_structurally() {
        use ldl_value::Value;
        let mut r = Relation::new(1);
        // Same canonical set inserted via two surface orders is one value…
        let s12 = intern::id_of(&Value::set(vec![Value::int(1), Value::int(2)]));
        r.insert(Arc::from(vec![s12]));
        let one = r.distinct_estimate(0);
        assert!((0.9..=1.5).contains(&one));
    }

    #[test]
    fn zero_arity_relation_holds_one_tuple() {
        let mut r = Relation::new(0);
        let empty: Tuple = Arc::from(Vec::<ValueId>::new());
        assert!(r.insert(Arc::clone(&empty)));
        assert!(!r.insert(empty));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_tombstones_and_revive_restores() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 20]));
        r.insert(t(&[2, 30]));
        let pos = r.remove_slice(&[id(1), id(10)]).unwrap();
        assert_eq!(pos, 0);
        assert_eq!(r.len(), 3, "len stays physical");
        assert_eq!(r.live_len(), 2);
        assert!(!r.contains(&[id(1), id(10)]));
        assert!(!r.is_live(0) && r.is_live(1) && r.is_live(2));
        // Index postings are pruned eagerly…
        assert_eq!(r.probe(&[0], &[id(1)]), &[1]);
        // …and iter skips the tombstone.
        assert_eq!(r.iter().count(), 2);
        // Removing a non-member (or the same tuple twice) is None.
        assert!(r.remove_slice(&[id(1), id(10)]).is_none());
        assert!(r.remove_slice(&[id(9), id(9)]).is_none());

        r.revive(pos);
        assert!(r.contains(&[id(1), id(10)]));
        assert_eq!(r.live_len(), 3);
        // Posting order is restored ascending, not appended.
        assert_eq!(r.probe(&[0], &[id(1)]), &[0, 1]);
        r.revive(pos); // double revive is a no-op
        assert_eq!(r.live_len(), 3);
    }

    #[test]
    fn removed_tuple_can_be_reinserted_at_new_position() {
        let mut r = Relation::new(1);
        r.insert(t(&[7]));
        r.remove_slice(&[id(7)]).unwrap();
        assert!(r.insert(t(&[7])), "tombstoned tuple is re-insertable");
        assert_eq!(r.len(), 2);
        assert_eq!(r.live_len(), 1);
        assert_eq!(r.position_of(&[id(7)]), Some(1));
    }

    #[test]
    fn truncate_interacts_with_tombstones() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        let p1 = r.remove_slice(&[id(1)]).unwrap();
        let mark = r.len();
        r.insert(t(&[1])); // revived-by-reinsert above the mark
        r.insert(t(&[3]));
        r.remove_slice(&[id(3)]).unwrap();

        r.truncate(mark);
        // The pre-mark tombstone survives; post-mark state is gone.
        assert_eq!(r.len(), 2);
        assert_eq!(r.live_len(), 1);
        assert!(!r.contains(&[id(1)]));
        assert!(r.contains(&[id(2)]));
        r.revive(p1);
        assert!(r.contains(&[id(1)]));
        assert_eq!(r.live_len(), 2);
    }

    #[test]
    fn counts_track_duplicate_insertions() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.enable_counts();
        assert!(r.counts_enabled());
        assert_eq!(r.count_at(0), 1, "existing tuples start at count 1");
        r.insert(t(&[1])); // duplicate → increment
        r.insert_slice(&[id(1)]);
        assert_eq!(r.count_at(0), 3);
        r.insert(t(&[2]));
        assert_eq!(r.count_at(1), 1);
        assert_eq!(r.decrement_count(0, 2), 1);
        assert_eq!(r.decrement_count(0, 1), 0);
        // Count 0 is the caller's cue to tombstone; storage doesn't do it.
        assert!(r.contains(&[id(1)]));
        r.enable_counts(); // idempotent: counts survive
        assert_eq!(r.count_at(1), 1);
    }

    #[test]
    fn estimates_follow_live_count() {
        let mut r = Relation::new(1);
        for x in 0..20 {
            r.insert(t(&[x]));
        }
        for x in 0..19 {
            r.remove_slice(&[id(x)]);
        }
        assert!(r.distinct_estimate(0) <= 1.0);
        assert_eq!(r.key_distinct_estimate(&[0]), 1.0);
        r.remove_slice(&[id(19)]);
        assert!(r.is_empty());
        assert_eq!(r.key_distinct_estimate(&[0]), 0.0);
    }

    #[test]
    fn part_index_shards_cover_full_index() {
        let nshards = 4;
        let mut r = Relation::new(2);
        for x in 0..200 {
            r.insert(t(&[x % 20, x]));
        }
        r.ensure_index(&[0]);
        r.ensure_part_index(&[0], nshards);
        for key_val in 0..20 {
            let key = [id(key_val)];
            let full = r.probe(&[0], &key);
            let s = shard_of_key(&key, nshards);
            let shard = r.part_shard(&[0], nshards, s).unwrap();
            // The owning shard returns the identical ascending posting
            // list; every other shard returns nothing for this key.
            assert_eq!(shard.probe(&key), full);
            for other in (0..nshards).filter(|&o| o != s) {
                assert!(r
                    .part_shard(&[0], nshards, other)
                    .unwrap()
                    .probe(&key)
                    .is_empty());
            }
        }
        // A different shard count is not served stale.
        assert!(r.part_shard(&[0], 8, 0).is_none());
        r.ensure_part_index(&[0], 8);
        let key = [id(3)];
        let s8 = shard_of_key(&key, 8);
        assert_eq!(
            r.part_shard(&[0], 8, s8).unwrap().probe(&key),
            r.probe(&[0], &key)
        );
    }

    #[test]
    fn part_index_maintained_on_insert_remove_revive_truncate() {
        let nshards = 3;
        let mut r = Relation::new(2);
        r.ensure_part_index(&[0], nshards);
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 20]));
        let mark = r.len();
        r.insert(t(&[1, 30]));
        let key = [id(1)];
        let s = shard_of_key(&key, nshards);
        let probe = |r: &Relation| -> Vec<u32> {
            r.part_shard(&[0], nshards, s).unwrap().probe(&key).to_vec()
        };
        assert_eq!(probe(&r), vec![0, 1, 2]);

        let pos = r.remove_slice(&[id(1), id(10)]).unwrap();
        assert_eq!(probe(&r), vec![1, 2]);
        r.revive(pos);
        assert_eq!(probe(&r), vec![0, 1, 2], "revive restores sorted slot");

        r.truncate(mark);
        assert_eq!(probe(&r), vec![0, 1]);
        // An index built after removals skips tombstones, like ensure_index.
        r.remove_slice(&[id(1), id(10)]).unwrap();
        let mut fresh = r.clone();
        fresh.ensure_part_index(&[1], nshards);
        let k20 = [id(20)];
        let s20 = shard_of_key(&k20, nshards);
        assert_eq!(
            fresh.part_shard(&[1], nshards, s20).unwrap().probe(&k20),
            &[1]
        );
        let k10 = [id(10)];
        let s10 = shard_of_key(&k10, nshards);
        assert!(fresh
            .part_shard(&[1], nshards, s10)
            .unwrap()
            .probe(&k10)
            .is_empty());
    }

    #[test]
    fn shard_routing_is_structural_and_total() {
        // Every key lands in range, and the projection/key forms agree.
        let mut r = Relation::new(2);
        for x in 0..50 {
            r.insert(t(&[x, x * 2]));
        }
        for x in 0..50i64 {
            let s = shard_of_key(&[id(x)], 7);
            assert!(s < 7);
            assert_eq!(shard_of_projection(&[0], &t(&[x, x * 2]), 7), s);
        }
        // Canonical sets shard by structure: {2,1} routes like {1,2}.
        let s12 = intern::id_of(&Value::set(vec![Value::int(1), Value::int(2)]));
        let s21 = intern::id_of(&Value::set(vec![Value::int(2), Value::int(1)]));
        assert_eq!(shard_of_key(&[s12], 5), shard_of_key(&[s21], 5));
    }

    #[test]
    fn set_valued_columns_index_correctly() {
        let mut r = Relation::new(2);
        let s12 = intern::id_of(&Value::set(vec![Value::int(1), Value::int(2)]));
        let s21 = intern::id_of(&Value::set(vec![Value::int(2), Value::int(1)]));
        r.insert(Arc::from(vec![intern::id_of(&Value::atom("a")), s12]));
        r.ensure_index(&[1]);
        // Canonical sets: {2,1} interns equal to {1,2}.
        assert_eq!(r.probe(&[1], &[s21]).len(), 1);
    }
}
