//! Databases: named relations.

use ldl_value::fxhash::FastMap;
use ldl_value::{intern, Fact, FactSet, Symbol, Value, ValueId};

use crate::relation::Relation;

/// A database: a collection of facts (§6: "A database D is a collection of
/// facts"), organized as one [`Relation`] per predicate symbol.
///
/// A `&Database` is a valid *shared snapshot*: every read path is `&self`,
/// so the parallel evaluator hands one borrow to each worker of a round and
/// all of them see the identical state — the compiler rules out any
/// mutation while those borrows live. The `Send + Sync` assertion below
/// turns an accidental introduction of interior mutability (`Cell`,
/// `RefCell`, `Rc`) anywhere in the storage types into a compile error
/// rather than a data race.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: FastMap<Symbol, Relation>,
}

// Shared-snapshot contract: a `&Database` must be usable from many threads
// at once (see the parallel round in `ldl-eval`).
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Database>()
};

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert one fact; creates the relation on first use. Returns `true`
    /// iff the fact was new. This is the structural entry point: arguments
    /// are interned here, once, and the engine runs on the resulting ids.
    pub fn insert(&mut self, fact: Fact) -> bool {
        let ids: Vec<ValueId> = fact.args().iter().map(intern::id_of).collect();
        self.insert_id_slice(fact.pred(), &ids)
    }

    /// Insert an already-interned owned tuple.
    #[deprecated(note = "use `insert_id_slice` — tuples are copied into the relation's arena")]
    #[allow(deprecated)]
    pub fn insert_ids(&mut self, pred: Symbol, tuple: crate::relation::Tuple) -> bool {
        self.insert_id_slice(pred, &tuple)
    }

    /// Insert an interned tuple borrowed from a derivation buffer — the
    /// merge-phase hot path. A rejected duplicate allocates nothing (see
    /// [`Relation::insert_slice`]). Returns `true` iff the tuple was new.
    pub fn insert_id_slice(&mut self, pred: Symbol, tuple: &[ValueId]) -> bool {
        let rel = self
            .relations
            .entry(pred)
            .or_insert_with(|| Relation::new(tuple.len()));
        rel.insert_slice(tuple)
    }

    /// Insert a fact given as predicate + values.
    pub fn insert_tuple(&mut self, pred: impl Into<Symbol>, args: Vec<Value>) -> bool {
        self.insert(Fact::new(pred, args))
    }

    /// Bulk insert.
    pub fn extend(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for f in facts {
            self.insert(f);
        }
    }

    /// The relation for `pred`, if any facts exist.
    pub fn relation(&self, pred: Symbol) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Mutable access, creating an empty relation of the given arity if
    /// absent.
    pub fn relation_mut(&mut self, pred: Symbol, arity: usize) -> &mut Relation {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(arity))
    }

    /// Does the database contain this fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        let ids: Vec<ValueId> = fact.args().iter().map(intern::id_of).collect();
        self.relations
            .get(&fact.pred())
            .is_some_and(|r| r.contains(&ids))
    }

    /// All predicate symbols with at least one relation (possibly empty).
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.relations.keys().copied()
    }

    /// Total number of (live) facts.
    pub fn num_facts(&self) -> usize {
        self.relations.values().map(Relation::live_len).sum()
    }

    /// Tombstone one fact (see [`Relation::remove_slice`]). Returns the
    /// tombstoned insertion position, or `None` when the fact is not
    /// (live) in the database.
    pub fn remove(&mut self, fact: &Fact) -> Option<u32> {
        let ids: Vec<ValueId> = fact.args().iter().map(intern::id_of).collect();
        self.remove_ids(fact.pred(), &ids)
    }

    /// Tombstone one already-interned tuple. Returns the tombstoned
    /// position, or `None` when absent.
    pub fn remove_ids(&mut self, pred: Symbol, tuple: &[ValueId]) -> Option<u32> {
        self.relations.get_mut(&pred)?.remove_slice(tuple)
    }

    /// Undo a tombstone recorded by [`Database::remove`] — the rollback
    /// half of a failed mutation batch (see [`Relation::revive`]).
    pub fn revive(&mut self, pred: Symbol, pos: u32) {
        if let Some(rel) = self.relations.get_mut(&pred) {
            rel.revive(pos);
        }
    }

    /// All facts of one predicate (ids resolved back to structural values —
    /// the public-API boundary).
    pub fn facts_of(&self, pred: Symbol) -> Vec<Fact> {
        self.relations
            .get(&pred)
            .into_iter()
            .flat_map(|r| r.iter().map(move |t| resolve_fact(pred, t)))
            .collect()
    }

    /// Snapshot the whole database as a [`FactSet`] (an interpretation, for
    /// model checking).
    pub fn to_fact_set(&self) -> FactSet {
        let mut out = FactSet::default();
        for (&p, r) in &self.relations {
            for t in r.iter() {
                out.insert(resolve_fact(p, t));
            }
        }
        out
    }

    /// Render every fact as LDL1 fact syntax, sorted, one per line — a text
    /// dump that `ldl1::System::load` (or the CLI `:load`) reads back.
    pub fn dump(&self) -> String {
        let mut lines: Vec<String> = self.to_fact_set().iter().map(|f| format!("{f}.")).collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Build a database from an interpretation.
    pub fn from_fact_set(facts: &FactSet) -> Database {
        let mut db = Database::new();
        for f in facts {
            db.insert(f.clone());
        }
        db
    }

    /// Snapshot the current size of every relation. Together with
    /// [`Database::truncate_to`] this gives an *epoch* mechanism over the
    /// append-only storage: facts inserted after a mark form the delta
    /// `[mark, len)` per relation, and the database can be rolled back to
    /// the mark without copying any tuples.
    pub fn mark(&self) -> Mark {
        Mark {
            lens: self.relations.iter().map(|(&p, r)| (p, r.len())).collect(),
        }
    }

    /// The number of tuples relation `pred` held at `mark` (0 if it did not
    /// exist yet).
    pub fn len_at(mark: &Mark, pred: Symbol) -> usize {
        mark.lens.get(&pred).copied().unwrap_or(0)
    }

    /// Roll every relation back to its size at `mark`. Relations created
    /// after the mark are removed entirely; the rest drop the tuples
    /// appended since (indexes are pruned, not rebuilt).
    pub fn truncate_to(&mut self, mark: &Mark) {
        self.relations.retain(|p, r| match mark.lens.get(p) {
            Some(&len) => {
                r.truncate(len);
                true
            }
            None => false,
        });
    }

    /// The statistics epoch of `pred`'s relation, or 0 when the relation
    /// does not exist yet. Epoch drift (see [`Relation::stats_epoch`]) is
    /// how the evaluator's plan cache decides a cached join plan is stale.
    pub fn stats_epoch(&self, pred: Symbol) -> u64 {
        self.relations.get(&pred).map_or(0, |r| r.stats_epoch())
    }

    /// Estimated output cardinality of scanning `pred` with the given
    /// columns ground: `len / distinct(bound_cols)` per the incrementally
    /// maintained sketches, `len` for a full scan, `0` for an empty
    /// relation, and `None` when the relation does not exist (no
    /// statistics at all — the planner falls back to greedy ordering).
    pub fn scan_estimate(&self, pred: Symbol, bound_cols: &[usize]) -> Option<f64> {
        let rel = self.relations.get(&pred)?;
        if rel.is_empty() {
            return Some(0.0);
        }
        if bound_cols.is_empty() {
            return Some(rel.live_len() as f64);
        }
        Some(rel.live_len() as f64 / rel.key_distinct_estimate(bound_cols))
    }

    /// Remove one relation wholesale (used when an IDB predicate is rebuilt
    /// from scratch during incremental maintenance).
    pub fn remove_relation(&mut self, pred: Symbol) -> Option<Relation> {
        self.relations.remove(&pred)
    }

    /// Install `rel` as the relation for `pred`, replacing any existing one.
    pub fn set_relation(&mut self, pred: Symbol, rel: Relation) {
        self.relations.insert(pred, rel);
    }
}

/// A per-relation length snapshot — see [`Database::mark`].
#[derive(Clone, Debug, Default)]
pub struct Mark {
    lens: FastMap<Symbol, usize>,
}

/// Convenience: make an interned tuple from structural values.
#[deprecated(note = "use `intern_ids` — owned shared tuples are gone from the storage layer")]
#[allow(deprecated)]
pub fn tuple(vals: Vec<Value>) -> crate::relation::Tuple {
    vals.iter().map(intern::id_of).collect()
}

/// Intern structural values into a flat id vector — the borrowed-slice
/// counterpart of the old `tuple` helper, for [`Database::insert_id_slice`].
pub fn intern_ids(vals: &[Value]) -> Vec<ValueId> {
    vals.iter().map(intern::id_of).collect()
}

/// Resolve an interned tuple of `pred` back into a structural [`Fact`].
pub fn resolve_fact(pred: Symbol, tuple: &[ValueId]) -> Fact {
    Fact::new(pred, tuple.iter().map(|&i| intern::resolve(i)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        assert!(db.insert_tuple("parent", vec![Value::atom("a"), Value::atom("b")]));
        assert!(!db.insert_tuple("parent", vec![Value::atom("a"), Value::atom("b")]));
        assert!(db.contains(&Fact::new(
            "parent",
            vec![Value::atom("a"), Value::atom("b")]
        )));
        assert!(!db.contains(&Fact::new(
            "parent",
            vec![Value::atom("b"), Value::atom("a")]
        )));
        assert_eq!(db.num_facts(), 1);
    }

    #[test]
    fn fact_set_round_trip() {
        let mut db = Database::new();
        db.insert_tuple("q", vec![Value::int(1)]);
        db.insert_tuple("w", vec![Value::set(vec![Value::int(1)]), Value::int(7)]);
        let fs = db.to_fact_set();
        assert_eq!(fs.len(), 2);
        let db2 = Database::from_fact_set(&fs);
        assert_eq!(db2.to_fact_set(), fs);
    }

    #[test]
    fn facts_of_lists_one_predicate() {
        let mut db = Database::new();
        db.insert_tuple("p", vec![Value::int(1)]);
        db.insert_tuple("p", vec![Value::int(2)]);
        db.insert_tuple("q", vec![Value::int(3)]);
        let ps = db.facts_of(Symbol::intern("p"));
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|f| f.pred() == Symbol::intern("p")));
    }

    #[test]
    fn dump_is_sorted_fact_syntax() {
        let mut db = Database::new();
        db.insert_tuple("q", vec![Value::int(2)]);
        db.insert_tuple("q", vec![Value::int(1)]);
        db.insert_tuple("w", vec![Value::set(vec![Value::int(1)])]);
        assert_eq!(db.dump(), "q(1).\nq(2).\nw({1}).\n");
        assert_eq!(Database::new().dump(), "");
    }

    #[test]
    fn mark_and_truncate_roll_back_epochs() {
        let mut db = Database::new();
        db.insert_tuple("p", vec![Value::int(1)]);
        db.insert_tuple("q", vec![Value::int(1), Value::int(2)]);
        let mark = db.mark();
        assert_eq!(Database::len_at(&mark, Symbol::intern("p")), 1);
        assert_eq!(Database::len_at(&mark, Symbol::intern("fresh")), 0);

        db.insert_tuple("p", vec![Value::int(2)]);
        db.insert_tuple("fresh", vec![Value::int(9)]);
        assert_eq!(db.num_facts(), 4);

        db.truncate_to(&mark);
        assert_eq!(db.num_facts(), 2);
        assert!(db.relation(Symbol::intern("fresh")).is_none());
        assert!(db.contains(&Fact::new("p", vec![Value::int(1)])));
        assert!(!db.contains(&Fact::new("p", vec![Value::int(2)])));
        // Rolled-back facts can be inserted again as new.
        assert!(db.insert_tuple("p", vec![Value::int(2)]));
    }

    #[test]
    fn remove_and_revive_round_trip() {
        let mut db = Database::new();
        db.insert_tuple("p", vec![Value::int(1)]);
        db.insert_tuple("p", vec![Value::int(2)]);
        let pos = db.remove(&Fact::new("p", vec![Value::int(1)])).unwrap();
        assert!(!db.contains(&Fact::new("p", vec![Value::int(1)])));
        assert_eq!(db.num_facts(), 1);
        assert!(db.remove(&Fact::new("p", vec![Value::int(9)])).is_none());
        assert!(db.remove(&Fact::new("q", vec![Value::int(1)])).is_none());
        db.revive(Symbol::intern("p"), pos);
        assert!(db.contains(&Fact::new("p", vec![Value::int(1)])));
        assert_eq!(db.num_facts(), 2);
        // to_fact_set / dump see only live facts.
        db.remove(&Fact::new("p", vec![Value::int(2)]));
        assert_eq!(db.dump(), "p(1).\n");
    }

    #[test]
    fn set_and_remove_relation() {
        let mut db = Database::new();
        db.insert_tuple("p", vec![Value::int(1)]);
        let taken = db.remove_relation(Symbol::intern("p")).unwrap();
        assert_eq!(taken.len(), 1);
        assert!(db.relation(Symbol::intern("p")).is_none());
        db.set_relation(Symbol::intern("p"), taken);
        assert!(db.contains(&Fact::new("p", vec![Value::int(1)])));
    }

    #[test]
    fn relation_mut_creates() {
        let mut db = Database::new();
        let r = db.relation_mut(Symbol::intern("fresh"), 3);
        assert_eq!(r.arity(), 3);
        assert!(db.relation(Symbol::intern("fresh")).is_some());
        assert!(db.relation(Symbol::intern("missing")).is_none());
    }
}
