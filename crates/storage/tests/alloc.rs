//! Asserts the acceptance criterion of the arena migration: the insert
//! hot path performs **zero per-tuple heap allocations**. Pages, hash
//! tables, and posting lists amortize their growth, so N inserts into an
//! indexed relation must allocate o(N) times — we assert a hard ceiling
//! far below one allocation per tuple.
//!
//! This lives in its own integration-test binary because the counting
//! allocator must be the process-global allocator.

use ldl_storage::Relation;
use ldl_testkit::CountingAlloc;
use ldl_value::{intern, ValueId};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn insert_path_allocates_sublinearly() {
    const N: usize = 100_000;
    const ARITY: usize = 3;

    // Pre-intern every row so the loop below exercises only the storage
    // layer, not the interner.
    let rows: Vec<[ValueId; ARITY]> = (0..N)
        .map(|i| {
            [
                intern::mk_int(i as i64),
                intern::mk_int((i % 257) as i64),
                intern::mk_int((i % 9) as i64),
            ]
        })
        .collect();

    let mut rel = Relation::new(ARITY);
    rel.ensure_index(&[1]);
    rel.ensure_part_index(&[1], 4);

    // Warm up so the first page, table, and bucket pool exist — the
    // steady-state claim is about the hot loop, not first-touch setup.
    for row in &rows[..N / 10] {
        rel.insert_slice(row);
    }

    let before = ALLOC.count();
    for row in &rows[N / 10..] {
        rel.insert_slice(row);
    }
    // Duplicates take the dedup-hit path: hash borrowed slice, compare
    // in-arena, return. That path must allocate nothing at all.
    for row in &rows {
        assert!(!rel.insert_slice(row));
    }
    let allocs = ALLOC.delta(before);

    let inserted = N - N / 10;
    assert_eq!(rel.live_len(), N);
    // Amortized growth (arena pages, table rehashes, posting-list Vecs)
    // is allowed; one-allocation-per-tuple behavior is not. The old
    // `Arc<[ValueId]>` representation allocated >= 2N times here (one Arc
    // per accepted insert, one owned key per dedup probe); the arena
    // lands around N/20.
    assert!(
        (allocs as usize) < inserted / 10,
        "insert path allocated {allocs} times for {inserted} inserts \
         (ceiling {})",
        inserted / 10
    );
}
