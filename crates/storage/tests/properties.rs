//! Storage-level property tests: random insert / tombstone / revive /
//! index / part-index / truncate sequences checked against a naive
//! `Vec<Vec<ValueId>>` model, plus an arena-paging regression sweep.
//!
//! The model is the obvious thing a relation pretends to be: an
//! insertion-ordered list of rows with a live flag (and a derivation count
//! when counting is on). Every storage invariant the evaluator relies on is
//! phrased against it — physical `len`, live iteration order, eager posting
//! removal, ascending probe results, shard-routing agreement, and
//! truncate's interaction with tombstones.

use ldl_storage::{shard_of_key, Relation};
use ldl_testkit::{cases, Rng};
use ldl_value::{intern, ValueId};

/// The naive reference: rows in insertion order with liveness + counts.
#[derive(Default)]
struct Model {
    rows: Vec<Vec<ValueId>>,
    live: Vec<bool>,
    counts: Vec<u32>,
}

impl Model {
    fn live_pos_of(&self, t: &[ValueId]) -> Option<usize> {
        (0..self.rows.len()).find(|&p| self.live[p] && self.rows[p] == t)
    }

    fn insert(&mut self, t: &[ValueId], counting: bool) -> bool {
        if let Some(p) = self.live_pos_of(t) {
            if counting {
                self.counts[p] += 1;
            }
            return false;
        }
        self.rows.push(t.to_vec());
        self.live.push(true);
        self.counts.push(1);
        true
    }

    fn remove(&mut self, t: &[ValueId]) -> Option<usize> {
        let p = self.live_pos_of(t)?;
        self.live[p] = false;
        Some(p)
    }

    fn truncate(&mut self, n: usize) {
        if n < self.rows.len() {
            self.rows.truncate(n);
            self.live.truncate(n);
            self.counts.truncate(n);
        }
    }

    /// Dead positions safe to revive: their content is not live elsewhere
    /// (the only way the engine's rollback ever calls revive).
    fn revivable(&self) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&p| !self.live[p] && self.live_pos_of(&self.rows[p]).is_none())
            .collect()
    }
}

fn check_agreement(r: &Relation, m: &Model, indexes: &[Vec<usize>], parts: &[(Vec<usize>, u32)]) {
    assert_eq!(r.len(), m.rows.len(), "physical len");
    let live_count = m.live.iter().filter(|&&l| l).count();
    assert_eq!(r.live_len(), live_count, "live len");
    assert_eq!(r.is_empty(), live_count == 0);

    // Row access, liveness, and membership per position.
    for (p, row) in m.rows.iter().enumerate() {
        assert_eq!(r.get(p as u32), row.as_slice(), "row data at {p}");
        assert_eq!(r.is_live(p as u32), m.live[p], "liveness at {p}");
        if m.live[p] {
            assert_eq!(r.position_of(row), Some(p as u32));
            assert!(r.contains(row));
            if r.counts_enabled() {
                assert_eq!(r.count_at(p as u32), m.counts[p], "count at {p}");
            }
        }
    }
    // Tuples with no live occurrence are absent from the dedup filter.
    for (p, row) in m.rows.iter().enumerate() {
        if !m.live[p] && m.live_pos_of(row).is_none() {
            assert!(!r.contains(row), "tombstoned tuple at {p} still visible");
        }
    }

    // Live iteration order is insertion order.
    let got: Vec<&[ValueId]> = r.iter().collect();
    let want: Vec<&[ValueId]> = m
        .rows
        .iter()
        .enumerate()
        .filter(|&(p, _)| m.live[p])
        .map(|(_, row)| row.as_slice())
        .collect();
    assert_eq!(got, want, "iteration order");

    // Every index answers every key with the ascending live positions.
    for cols in indexes {
        let mut keys: Vec<Vec<ValueId>> = Vec::new();
        for row in &m.rows {
            let key: Vec<ValueId> = cols.iter().map(|&c| row[c]).collect();
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        for key in &keys {
            let want: Vec<u32> = m
                .rows
                .iter()
                .enumerate()
                .filter(|&(p, row)| m.live[p] && cols.iter().zip(key).all(|(&c, &k)| row[c] == k))
                .map(|(p, _)| p as u32)
                .collect();
            assert_eq!(
                r.probe(cols, key),
                want.as_slice(),
                "probe {cols:?}/{key:?}"
            );
        }
        // And misses miss.
        let miss: Vec<ValueId> = cols.iter().map(|_| intern::mk_int(-777)).collect();
        assert!(r.probe(cols, &miss).is_empty());
    }

    // Partitioned indexes: the owning shard returns the full index's
    // postings; the other shards return nothing for that key.
    for (cols, nshards) in parts {
        let mut keys: Vec<Vec<ValueId>> = Vec::new();
        for (p, row) in m.rows.iter().enumerate() {
            if !m.live[p] {
                continue;
            }
            let key: Vec<ValueId> = cols.iter().map(|&c| row[c]).collect();
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        for key in &keys {
            let want: Vec<u32> = m
                .rows
                .iter()
                .enumerate()
                .filter(|&(p, row)| m.live[p] && cols.iter().zip(key).all(|(&c, &k)| row[c] == k))
                .map(|(p, _)| p as u32)
                .collect();
            let owner = shard_of_key(key, *nshards);
            for s in 0..*nshards {
                let shard = r.part_shard(cols, *nshards, s).expect("shard exists");
                let expect: &[u32] = if s == owner { &want } else { &[] };
                assert_eq!(shard.probe(key), expect, "shard {s}/{nshards} of {key:?}");
            }
        }
    }
}

#[test]
fn random_op_sequences_match_naive_model() {
    cases(40, |rng: &mut Rng| {
        let arity = rng.range(1, 5) as usize;
        let pool = rng.range(2, 5); // small value pool → frequent duplicates
        let counting = rng.chance(1, 2);
        let mut r = Relation::new(arity);
        let mut m = Model::default();
        if counting {
            r.enable_counts();
        }
        let mut indexes: Vec<Vec<usize>> = Vec::new();
        let mut parts: Vec<(Vec<usize>, u32)> = Vec::new();
        let tuple = |rng: &mut Rng| -> Vec<ValueId> {
            (0..arity)
                .map(|_| intern::mk_int(rng.range(0, pool)))
                .collect()
        };

        let ops = rng.range(30, 120);
        for op in 0..ops {
            match rng.range(0, 100) {
                // Insert (the common op — the others need population).
                0..=54 => {
                    let t = tuple(rng);
                    assert_eq!(r.insert_slice(&t), m.insert(&t, counting), "insert {t:?}");
                }
                55..=69 => {
                    let t = tuple(rng);
                    let got = r.remove_slice(&t);
                    let want = m.remove(&t).map(|p| p as u32);
                    assert_eq!(got, want, "remove {t:?}");
                }
                70..=79 => {
                    let candidates = m.revivable();
                    if let Some(&p) = candidates.first() {
                        r.revive(p as u32);
                        m.live[p] = true;
                    }
                }
                80..=87 => {
                    let mut cols: Vec<usize> = (0..arity).filter(|_| rng.chance(1, 2)).collect();
                    if cols.is_empty() {
                        cols.push(rng.range(0, arity as i64) as usize);
                    }
                    r.ensure_index(&cols);
                    cols.sort_unstable();
                    cols.dedup();
                    if !indexes.contains(&cols) {
                        indexes.push(cols);
                    }
                }
                88..=93 => {
                    let col = rng.range(0, arity as i64) as usize;
                    let nshards = rng.range(1, 5) as u32;
                    r.ensure_part_index(&[col], nshards);
                    parts.retain(|(c, _)| c != &vec![col]);
                    parts.push((vec![col], nshards));
                }
                _ => {
                    let n = rng.range(0, m.rows.len() as i64 + 1) as usize;
                    r.truncate(n);
                    m.truncate(n);
                }
            }
            if op % 13 == 0 {
                check_agreement(&r, &m, &indexes, &parts);
            }
        }
        check_agreement(&r, &m, &indexes, &parts);
    });
}

/// Pages hold `prev_pow2(max(1, 4096 / arity))` rows; this sweep crosses
/// several page boundaries at every arity 1..8 and checks that row
/// addressing, the dedup filter, index probes, and truncation all stay
/// exact across them.
#[test]
fn arena_paging_is_exact_across_page_boundaries_at_arities_1_to_8() {
    for arity in 1usize..=8 {
        let target = (4096 / arity).max(1);
        let per_page = 1usize << (usize::BITS - 1 - target.leading_zeros());
        let n = 2 * per_page + per_page / 3 + 5; // lands mid-third-page
        let mut r = Relation::new(arity);
        r.ensure_index(&[arity - 1]);
        let row = |i: usize| -> Vec<ValueId> {
            (0..arity)
                .map(|c| intern::mk_int((i * arity + c) as i64))
                .collect()
        };
        for i in 0..n {
            assert!(r.insert_slice(&row(i)), "arity {arity}: insert {i}");
        }
        assert_eq!(r.len(), n);
        assert_eq!(r.arena_pages(), 3, "arity {arity}: page count");
        // Rows on both sides of each boundary read back exactly.
        for &p in &[
            0,
            per_page - 1,
            per_page,
            2 * per_page - 1,
            2 * per_page,
            n - 1,
        ] {
            assert_eq!(r.get(p as u32), row(p).as_slice(), "arity {arity}: row {p}");
            assert_eq!(r.position_of(&row(p)), Some(p as u32));
            assert_eq!(r.probe(&[arity - 1], &[row(p)[arity - 1]]), &[p as u32]);
        }
        // Duplicates across a page boundary are still rejected.
        assert!(!r.insert_slice(&row(0)));
        assert!(!r.insert_slice(&row(per_page)));
        // Truncate to one row past the first boundary, then regrow.
        r.truncate(per_page + 1);
        assert_eq!(r.arena_pages(), 2, "arity {arity}: post-truncate pages");
        assert!(r.contains(&row(per_page)));
        assert!(!r.contains(&row(per_page + 1)));
        assert!(r.insert_slice(&row(per_page + 1)));
        assert_eq!(r.get((per_page + 1) as u32), row(per_page + 1).as_slice());
        assert!(r.arena_bytes() >= 2 * per_page * arity * std::mem::size_of::<ValueId>());
    }
}
