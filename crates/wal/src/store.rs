//! The durable store: a data directory holding the write-ahead log and
//! the latest snapshot, with recovery on open.
//!
//! # Recovery
//!
//! [`Store::open`] rebuilds the database in three steps:
//!
//! 1. Load `snapshot.bin` if present (checksummed, installed by atomic
//!    rename — it is either wholly valid or [`WalError::Corrupt`]).
//! 2. Scan `wal.log`, keeping the longest valid record prefix. A torn or
//!    corrupt tail is *physically truncated* and reported as a
//!    [`Truncation`] — never an error — because a crash mid-append is
//!    expected, and the committed prefix is still intact.
//! 3. Replay every record with a sequence number above the snapshot's
//!    onto the snapshot image.
//!
//! # Checkpoint
//!
//! [`Store::checkpoint`] writes a new snapshot covering everything logged
//! so far, installs it by atomic rename, then starts a fresh log whose
//! `base_seq` is the snapshot's sequence. A crash between the two steps
//! leaves a snapshot that is *ahead* of the log's base — recovery replays
//! only records past the snapshot, and if the old log's surviving tail
//! ends *below* the snapshot's sequence (its last records were unsynced
//! and torn), the log is recreated fresh so later appends continue the
//! sequence without a gap.
//!
//! # Failure poisoning
//!
//! The store appends a batch only *after* the in-memory commit succeeded,
//! so if the append itself fails the log is missing a batch the process
//! already applied. The store then refuses further appends ("poisoned")
//! until a successful [`Store::checkpoint`] re-establishes a log that
//! agrees with memory.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use ldl_storage::Database;
use ldl_value::Fact;

use crate::codec::{decode_batch, encode_batch};
use crate::log::{self, WAL_FILE, WAL_HEADER_LEN};
use crate::snapshot::{self, SNAPSHOT_FILE};
use crate::{SyncPolicy, WalError, WalFile};

/// Configuration for a [`Store`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreOptions {
    /// When appended records are forced to stable storage.
    pub sync: SyncPolicy,
}

/// A torn or corrupt log tail that recovery dropped.
#[derive(Clone, Debug)]
pub struct Truncation {
    /// Byte offset within `wal.log` where the invalid suffix began.
    pub offset: u64,
    /// How many bytes were dropped.
    pub dropped_bytes: u64,
    /// Why the suffix was invalid.
    pub reason: String,
}

impl fmt::Display for Truncation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropped {} invalid log byte(s) at offset {}: {}",
            self.dropped_bytes, self.offset, self.reason
        )
    }
}

/// What [`Store::open`] found and did.
#[derive(Clone, Debug)]
pub struct RecoveryInfo {
    /// Sequence number covered by the loaded snapshot, if one existed.
    pub snapshot_seq: Option<u64>,
    /// Committed batches replayed from the log on top of the snapshot.
    pub replayed: u64,
    /// Last committed sequence number after recovery.
    pub last_seq: u64,
    /// The torn/corrupt tail that was truncated, if any.
    pub truncation: Option<Truncation>,
    /// Valid log length in bytes after recovery (header-only when the
    /// log was recreated fresh).
    pub wal_bytes: u64,
}

/// Result of appending one committed batch to the log.
#[derive(Clone, Copy, Debug)]
pub struct AppendInfo {
    /// The batch's sequence number.
    pub seq: u64,
    /// Bytes appended (record header + payload).
    pub bytes: u64,
    /// Whether this append was forced to stable storage before returning.
    pub synced: bool,
}

/// Result of a successful [`Store::checkpoint`].
#[derive(Clone, Debug)]
pub struct CheckpointInfo {
    /// Where the snapshot was installed.
    pub path: PathBuf,
    /// Size of the snapshot in bytes.
    pub bytes: u64,
    /// The log sequence number the snapshot covers.
    pub seq: u64,
}

/// An open durable data directory. See the module docs for the recovery
/// and checkpoint protocols.
pub struct Store {
    dir: PathBuf,
    options: StoreOptions,
    file: Box<dyn WalFile>,
    last_seq: u64,
    wal_len: u64,
    unsynced: u32,
    broken: Option<String>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("options", &self.options)
            .field("last_seq", &self.last_seq)
            .field("wal_len", &self.wal_len)
            .field("unsynced", &self.unsynced)
            .field("broken", &self.broken)
            .finish_non_exhaustive()
    }
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Durable rename needs the directory entry flushed too. Some
    // filesystems refuse to sync a directory handle; that is not fatal.
    match File::open(dir) {
        Ok(d) => match d.sync_all() {
            Ok(()) => Ok(()),
            Err(e) if e.raw_os_error() == Some(22) => Ok(()), // EINVAL
            Err(e) => Err(e),
        },
        Err(e) => Err(e),
    }
}

/// Write `bytes` to `dir/name` atomically: temp file, fsync, rename,
/// directory fsync.
fn install(dir: &Path, name: &str, bytes: &[u8]) -> Result<PathBuf, WalError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let path = dir.join(name);
    let mut f = File::create(&tmp)?;
    io::Write::write_all(&mut f, bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &path)?;
    fsync_dir(dir)?;
    Ok(path)
}

impl Store {
    /// Open (creating if needed) the data directory `dir` and recover the
    /// database it holds. Returns the store, the recovered database, and
    /// a report of what recovery found.
    pub fn open(
        dir: impl AsRef<Path>,
        options: StoreOptions,
    ) -> Result<(Store, Database, RecoveryInfo), WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        // 1. Snapshot (all-or-nothing).
        let (mut db, snap_seq, snapshot_seq) = match fs::read(dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => {
                let (db, seq) = snapshot::decode(&bytes)?;
                (db, seq, Some(seq))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (Database::new(), 0, None),
            Err(e) => return Err(e.into()),
        };

        // 2. Log scan.
        let wal_path = dir.join(WAL_FILE);
        let bytes = match fs::read(&wal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let scan = log::scan(&bytes)?;
        let mut truncation = scan.truncated;
        let fresh = scan.valid_len == 0;
        if !fresh && scan.base_seq > snap_seq {
            // The log continues from a snapshot that is not the one on
            // disk — records before base_seq are unrecoverable.
            return Err(WalError::Corrupt {
                offset: 8,
                detail: format!(
                    "log begins at sequence {} but the installed snapshot covers {}",
                    scan.base_seq, snap_seq
                ),
            });
        }

        // 3. Replay records past the snapshot. A record that passed its
        // CRC but does not decode is treated like any other corrupt tail.
        let mut valid_len = scan.valid_len;
        let mut last_seq = snap_seq;
        let mut log_tail_seq = scan.base_seq;
        let mut replayed = 0u64;
        let mut offset = WAL_HEADER_LEN;
        for (seq, payload) in &scan.records {
            let rec_len = 16 + payload.len() as u64;
            if *seq > snap_seq {
                match decode_batch(payload) {
                    Ok((del, ins)) => {
                        for f in &del {
                            db.remove(f);
                        }
                        for f in ins {
                            db.insert(f);
                        }
                        last_seq = *seq;
                        replayed += 1;
                    }
                    Err(reason) => {
                        truncation = Some(Truncation {
                            offset,
                            dropped_bytes: bytes.len() as u64 - offset,
                            reason: format!("undecodable batch at sequence {seq}: {reason}"),
                        });
                        valid_len = offset;
                        break;
                    }
                }
            }
            log_tail_seq = *seq;
            offset += rec_len;
        }

        // 4. Make the on-disk log agree with what we recovered, and open
        // the append handle. The kept log must end exactly at `last_seq`:
        // a crash in checkpoint() between snapshot install and log
        // recreation can leave a *stale* log whose last surviving record
        // sits below the snapshot's sequence (its tail was unsynced and
        // torn). Appending seq `last_seq + 1` after that record would
        // open a sequence gap the next scan() truncates at — silently
        // dropping committed batches — so such a log is recreated fresh,
        // based at `last_seq`, exactly like an empty one.
        let stale = log_tail_seq < last_seq;
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        let wal_len = if fresh || stale {
            // Start over, continuing from the recovered sequence (for an
            // empty or torn-header log that is the snapshot's sequence;
            // every record a stale log held is covered by the snapshot).
            file.set_len(0)?;
            let header = log::encode_header(last_seq);
            io::Write::write_all(&mut file, &header)?;
            file.sync_data()?;
            WAL_HEADER_LEN
        } else {
            if valid_len < bytes.len() as u64 {
                file.set_len(valid_len)?;
                file.sync_data()?;
            }
            valid_len
        };

        let info = RecoveryInfo {
            snapshot_seq,
            replayed,
            last_seq,
            truncation,
            wal_bytes: wal_len,
        };
        let store = Store {
            dir,
            options,
            file: Box::new(file),
            last_seq,
            wal_len,
            unsynced: 0,
            broken: None,
        };
        Ok((store, db, info))
    }

    /// The data directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the store was opened with.
    pub fn options(&self) -> StoreOptions {
        self.options
    }

    /// Last committed sequence number.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Current logical length of the log file in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// If a log write failed, why further appends are refused.
    pub fn broken(&self) -> Option<&str> {
        self.broken.as_deref()
    }

    /// Replace the log's byte sink. Used by fault-injection tests to
    /// interpose crashes and corruption; clears any poisoning. Appends go
    /// to the new sink; the snapshot path is unaffected.
    pub fn set_wal_file(&mut self, file: Box<dyn WalFile>) {
        self.file = file;
        self.broken = None;
        self.unsynced = 0;
    }

    /// Append one committed batch — net `del`etions then `ins`ertions —
    /// to the log, syncing per the store's [`SyncPolicy`].
    pub fn append(&mut self, del: &[Fact], ins: &[Fact]) -> Result<AppendInfo, WalError> {
        if let Some(why) = &self.broken {
            return Err(WalError::Io(io::Error::other(format!(
                "log is poisoned by an earlier write failure ({why}); checkpoint to recover"
            ))));
        }
        let payload = encode_batch(del, ins);
        // An oversized payload would be acknowledged here and then
        // rejected by recovery's scan as a corrupt length field — refuse
        // it up front. Nothing was written, so the store is not poisoned.
        log::check_payload_len(payload.len())?;
        let seq = self.last_seq + 1;
        let record = log::encode_record(seq, &payload);
        if let Err(e) = self.file.write_all(&record) {
            self.broken = Some(e.to_string());
            return Err(e.into());
        }
        let synced = match self.options.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                self.unsynced >= n.max(1)
            }
            SyncPolicy::Never => false,
        };
        if synced {
            if let Err(e) = self.file.sync_data() {
                self.broken = Some(e.to_string());
                return Err(e.into());
            }
            self.unsynced = 0;
        }
        self.last_seq = seq;
        self.wal_len += record.len() as u64;
        Ok(AppendInfo {
            seq,
            bytes: record.len() as u64,
            synced,
        })
    }

    /// Force any unsynced appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if let Err(e) = self.file.sync_data() {
            self.broken = Some(e.to_string());
            return Err(e.into());
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Snapshot `db` (which must be the state after the last appended
    /// batch), install it atomically, and start a fresh log from it. On
    /// success the store is no longer poisoned and the log is one header
    /// long.
    pub fn checkpoint(&mut self, db: &Database) -> Result<CheckpointInfo, WalError> {
        let seq = self.last_seq;
        let bytes = snapshot::encode(db, seq);
        let path = install(&self.dir, SNAPSHOT_FILE, &bytes)?;
        // The snapshot now covers every logged record; replace the log
        // with a fresh one based at `seq`. A crash before this rename
        // leaves the old log behind the new snapshot — recovery replays
        // nothing from it.
        install(&self.dir, WAL_FILE, &log::encode_header(seq))?;
        // The old append handle points at the unlinked file; reopen.
        self.file = Box::new(
            OpenOptions::new()
                .append(true)
                .open(self.dir.join(WAL_FILE))?,
        );
        self.wal_len = WAL_HEADER_LEN;
        self.unsynced = 0;
        self.broken = None;
        Ok(CheckpointInfo {
            path,
            bytes: bytes.len() as u64,
            seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_value::Value;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ldl-wal-test-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fact(p: &str, i: i64) -> Fact {
        Fact::new(p, vec![Value::int(i)])
    }

    #[test]
    fn append_then_reopen_replays() {
        let dir = temp_dir("replay");
        let (mut store, mut db, info) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(info.last_seq, 0);
        assert!(info.snapshot_seq.is_none());
        for i in 0..10 {
            db.insert(fact("p", i));
            let a = store.append(&[], &[fact("p", i)]).unwrap();
            assert_eq!(a.seq, i as u64 + 1);
            assert!(a.synced);
        }
        db.remove(&fact("p", 3));
        store.append(&[fact("p", 3)], &[]).unwrap();
        let expect = db.dump();
        drop(store);

        let (store2, db2, info2) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(info2.replayed, 11);
        assert_eq!(info2.last_seq, 11);
        assert!(info2.truncation.is_none());
        assert_eq!(store2.last_seq(), 11);
        assert_eq!(db2.dump(), expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_syncs_every_n() {
        let dir = temp_dir("group");
        let opts = StoreOptions {
            sync: SyncPolicy::EveryN(3),
        };
        let (mut store, _db, _) = Store::open(&dir, opts).unwrap();
        let synced: Vec<bool> = (0..7)
            .map(|i| store.append(&[], &[fact("p", i)]).unwrap().synced)
            .collect();
        assert_eq!(synced, vec![false, false, true, false, false, true, false]);
        store.sync().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_installs_snapshot_and_restarts_log() {
        let dir = temp_dir("ckpt");
        let (mut store, mut db, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..5 {
            db.insert(fact("q", i));
            store.append(&[], &[fact("q", i)]).unwrap();
        }
        let before_ckpt = store.wal_len();
        assert!(before_ckpt > WAL_HEADER_LEN);
        let info = store.checkpoint(&db).unwrap();
        assert_eq!(info.seq, 5);
        assert!(info.bytes > 0);
        assert!(info.path.ends_with(SNAPSHOT_FILE));
        assert_eq!(store.wal_len(), WAL_HEADER_LEN);

        // Appends continue from the checkpoint's sequence.
        db.insert(fact("q", 100));
        let a = store.append(&[], &[fact("q", 100)]).unwrap();
        assert_eq!(a.seq, 6);
        drop(store);

        let (_s, db2, info2) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(info2.snapshot_seq, Some(5));
        assert_eq!(info2.replayed, 1);
        assert_eq!(info2.last_seq, 6);
        assert_eq!(db2.dump(), db.dump());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = temp_dir("torn");
        let (mut store, mut db, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..4 {
            db.insert(fact("r", i));
            store.append(&[], &[fact("r", i)]).unwrap();
        }
        let good_len = store.wal_len();
        drop(store);
        // Simulate a crash mid-append: garbage on the end of the log.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        io::Write::write_all(&mut f, &[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);

        let (store2, db2, info) = Store::open(&dir, StoreOptions::default()).unwrap();
        let t = info.truncation.expect("tail must be reported");
        assert_eq!(t.offset, good_len);
        assert_eq!(t.dropped_bytes, 3);
        assert_eq!(db2.dump(), db.dump());
        assert_eq!(store2.wal_len(), good_len);
        // The file itself was repaired.
        assert_eq!(fs::metadata(dir.join(WAL_FILE)).unwrap().len(), good_len);
        drop(store2);
        // Reopening again is clean.
        let (_s, _d, info2) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(info2.truncation.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_ahead_of_log_recovers() {
        // A crash between snapshot install and log recreation leaves the
        // *old* log (base 0, records 1..=n) with a snapshot covering n.
        let dir = temp_dir("ahead");
        let (mut store, mut db, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..3 {
            db.insert(fact("s", i));
            store.append(&[], &[fact("s", i)]).unwrap();
        }
        // Install the snapshot "by hand" without recreating the log.
        let bytes = snapshot::encode(&db, 3);
        install(&dir, SNAPSHOT_FILE, &bytes).unwrap();
        drop(store);

        let (store2, db2, info) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(info.snapshot_seq, Some(3));
        assert_eq!(
            info.replayed, 0,
            "records at or below the snapshot are skipped"
        );
        assert_eq!(info.last_seq, 3);
        assert_eq!(db2.dump(), db.dump());
        drop(store2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_log_behind_snapshot_is_recreated() {
        // A crash in checkpoint() between snapshot install and log
        // recreation, where the old log's own tail was unsynced and torn:
        // the snapshot covers sequence 3 but the surviving log ends at
        // record 2. Appending to that log would write sequence 4 after
        // record 2 — a gap the next scan() would truncate at, silently
        // dropping the committed batch.
        let dir = temp_dir("stale");
        let (mut store, mut db, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..3 {
            db.insert(fact("v", i));
            store.append(&[], &[fact("v", i)]).unwrap();
        }
        let bytes = snapshot::encode(&db, 3);
        install(&dir, SNAPSHOT_FILE, &bytes).unwrap();
        drop(store);
        // Tear off the log's last record, as a lost unsynced tail would.
        let wal_path = dir.join(WAL_FILE);
        let wal_bytes = fs::read(&wal_path).unwrap();
        let scan = log::scan(&wal_bytes).unwrap();
        let keep = WAL_HEADER_LEN
            + scan.records[..2]
                .iter()
                .map(|(_, p)| 16 + p.len() as u64)
                .sum::<u64>();
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);

        let (mut store2, mut db2, info) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(info.snapshot_seq, Some(3));
        assert_eq!(info.last_seq, 3);
        assert_eq!(info.replayed, 0);
        assert_eq!(
            info.wal_bytes, WAL_HEADER_LEN,
            "the stale log must be recreated fresh"
        );
        assert_eq!(db2.dump(), db.dump());

        // The next append continues the sequence; a further recovery must
        // keep it — before the fix it was silently dropped as a gap.
        db2.insert(fact("v", 100));
        let a = store2.append(&[], &[fact("v", 100)]).unwrap();
        assert_eq!(a.seq, 4);
        drop(store2);
        let (_s3, db3, info3) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(info3.truncation.is_none(), "{:?}", info3.truncation);
        assert_eq!(info3.last_seq, 4);
        assert_eq!(db3.dump(), db2.dump());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_from_missing_snapshot_is_corrupt() {
        let dir = temp_dir("orphan");
        let (mut store, mut db, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        db.insert(fact("t", 1));
        store.append(&[], &[fact("t", 1)]).unwrap();
        store.checkpoint(&db).unwrap();
        db.insert(fact("t", 2));
        store.append(&[], &[fact("t", 2)]).unwrap();
        drop(store);
        // Lose the snapshot: the log's base_seq now points at history
        // that no longer exists anywhere.
        fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
        match Store::open(&dir, StoreOptions::default()) {
            Err(WalError::Corrupt { detail, .. }) => {
                assert!(detail.contains("snapshot"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failure_poisons_until_checkpoint() {
        struct FailingFile;
        impl WalFile for FailingFile {
            fn write_all(&mut self, _buf: &[u8]) -> io::Result<()> {
                Err(io::Error::other("injected write failure"))
            }
            fn sync_data(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let dir = temp_dir("poison");
        let (mut store, mut db, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        store.set_wal_file(Box::new(FailingFile));
        db.insert(fact("u", 1));
        assert!(store.append(&[], &[fact("u", 1)]).is_err());
        assert!(store.broken().is_some());
        // Still poisoned even though the next write would "succeed".
        let err = store.append(&[], &[fact("u", 2)]).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // Checkpoint heals: it rewrites durable state from `db`.
        store.checkpoint(&db).unwrap();
        assert!(store.broken().is_none());
        db.insert(fact("u", 3));
        store.append(&[], &[fact("u", 3)]).unwrap();
        drop(store);
        let (_s, db2, _) = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(db2.dump(), db.dump());
        let _ = fs::remove_dir_all(&dir);
    }
}
