//! Whole-database snapshots: a compact, checksummed image of every
//! relation at one log sequence number.
//!
//! ```text
//! "LDL1SNAP"  version:u32  reserved:u32  seq:u64
//! node_count:u32
//!   node*          -- structural value nodes, post-order: a node's
//!                  -- children are u32 indexes into *earlier* entries
//! rel_count:u32
//!   relation*      -- sorted by predicate name:
//!                  --   name:str  arity:u32  nrows:u32  (nrows × arity
//!                  --   node indexes)
//! crc:u32          -- CRC-32 of every preceding byte
//! ```
//!
//! Rows share their value nodes through the table, so a database whose
//! facts overlap structurally (the common case) snapshots far smaller
//! than one fact-per-fact dump. Like the log, nodes are structural —
//! indexes are *local to this file*, never interner ids — so any process
//! can load a snapshot regardless of interning order.
//!
//! Unlike the log, a snapshot is never partially trusted: it is written
//! whole to a temporary file, fsynced, and installed by atomic rename, so
//! either the old or the new snapshot is present after a crash. Any
//! checksum or structure failure is [`WalError::Corrupt`].

use std::collections::HashMap;
use std::sync::Arc;

use ldl_storage::Database;
use ldl_value::intern::{self, Node};
use ldl_value::{Symbol, ValueId};

use crate::codec::{put_str, put_u32, put_u64, Cursor};
use crate::crc::crc32;
use crate::WalError;

/// The snapshot's file name within a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

const SNAP_MAGIC: &[u8; 8] = b"LDL1SNAP";
const SNAP_VERSION: u32 = 1;

const NODE_INT: u8 = 0;
const NODE_STR: u8 = 1;
const NODE_ATOM: u8 = 2;
const NODE_COMPOUND: u8 = 3;
const NODE_SET: u8 = 4;

/// Append `id`'s structure to the node table (children first), returning
/// its local index.
fn add_node(
    id: ValueId,
    table: &mut HashMap<ValueId, u32>,
    out: &mut Vec<u8>,
    count: &mut u32,
) -> u32 {
    if let Some(&idx) = table.get(&id) {
        return idx;
    }
    let emit = |children: &[ValueId],
                tag: u8,
                name: Option<Symbol>,
                table: &mut HashMap<ValueId, u32>,
                out: &mut Vec<u8>,
                count: &mut u32| {
        let idxs: Vec<u32> = children
            .iter()
            .map(|&c| add_node(c, table, out, count))
            .collect();
        out.push(tag);
        if let Some(n) = name {
            put_str(out, n.as_str());
        }
        put_u32(out, idxs.len() as u32);
        for i in idxs {
            put_u32(out, i);
        }
    };
    match intern::node(id) {
        Node::Int(i) => {
            out.push(NODE_INT);
            put_u64(out, *i as u64);
        }
        Node::Str(s) => {
            out.push(NODE_STR);
            put_str(out, s);
        }
        Node::Atom(a) => {
            out.push(NODE_ATOM);
            put_str(out, a.as_str());
        }
        Node::Compound(f, args) => emit(args, NODE_COMPOUND, Some(*f), table, out, count),
        Node::Set(elems) => emit(elems, NODE_SET, None, table, out, count),
    }
    let idx = *count;
    *count += 1;
    table.insert(id, idx);
    idx
}

/// Serialize `db` as a snapshot covering log sequence `seq`.
pub(crate) fn encode(db: &Database, seq: u64) -> Vec<u8> {
    let mut preds: Vec<Symbol> = db.predicates().collect();
    preds.sort_by_key(|p| p.as_str());

    // Node table and per-relation row indexes, in one pass.
    let mut table = HashMap::new();
    let mut nodes = Vec::new();
    let mut count = 0u32;
    let mut rels = Vec::new();
    for &pred in &preds {
        let rel = db.relation(pred).expect("listed predicate");
        put_str(&mut rels, pred.as_str());
        put_u32(&mut rels, rel.arity() as u32);
        put_u32(&mut rels, rel.live_len() as u32);
        for row in rel.iter() {
            for &id in row {
                let idx = add_node(id, &mut table, &mut nodes, &mut count);
                put_u32(&mut rels, idx);
            }
        }
    }

    let mut out = Vec::with_capacity(32 + nodes.len() + rels.len());
    out.extend_from_slice(SNAP_MAGIC);
    put_u32(&mut out, SNAP_VERSION);
    put_u32(&mut out, 0); // reserved
    put_u64(&mut out, seq);
    put_u32(&mut out, count);
    out.extend_from_slice(&nodes);
    put_u32(&mut out, preds.len() as u32);
    out.extend_from_slice(&rels);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn corrupt(offset: usize, detail: impl Into<String>) -> WalError {
    WalError::Corrupt {
        offset: offset as u64,
        detail: detail.into(),
    }
}

/// Decode a snapshot's bytes back into the database image and the log
/// sequence it covers. Any damage is [`WalError::Corrupt`] — snapshots
/// are installed atomically, so unlike the log there is no torn tail to
/// forgive.
pub(crate) fn decode(bytes: &[u8]) -> Result<(Database, u64), WalError> {
    if bytes.len() < 8 || &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt(0, "bad snapshot magic (not an LDL1 snapshot)"));
    }
    if bytes.len() < 32 {
        return Err(corrupt(bytes.len(), "snapshot shorter than its header"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(corrupt(body.len(), "snapshot checksum mismatch"));
    }

    let mut c = Cursor::new(&body[8..]);
    let fail = |c: &Cursor<'_>, e: String| corrupt(8 + c.offset(), e);
    let version = c.u32("snapshot version").map_err(|e| fail(&c, e))?;
    if version != SNAP_VERSION {
        return Err(corrupt(
            8,
            format!("unsupported snapshot version {version} (expected {SNAP_VERSION})"),
        ));
    }
    let _reserved = c.u32("reserved").map_err(|e| fail(&c, e))?;
    let seq = c.u64("snapshot sequence").map_err(|e| fail(&c, e))?;

    // Node table: each entry may only reference earlier entries, so one
    // forward pass rebuilds interner ids.
    let node_count = c.u32("node count").map_err(|e| fail(&c, e))? as usize;
    if node_count > body.len() {
        return Err(fail(
            &c,
            format!("node count {node_count} exceeds snapshot size"),
        ));
    }
    let mut ids: Vec<ValueId> = Vec::with_capacity(node_count);
    let child_ids = |c: &mut Cursor<'_>, ids: &Vec<ValueId>| -> Result<Vec<ValueId>, String> {
        let n = c.u32("child count")? as usize;
        if n > c.remaining() / 4 {
            return Err(format!("child count {n} exceeds remaining bytes"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = c.u32("child index")? as usize;
            out.push(*ids.get(idx).ok_or_else(|| {
                format!(
                    "child index {idx} is not an earlier node (table has {})",
                    ids.len()
                )
            })?);
        }
        Ok(out)
    };
    for _ in 0..node_count {
        let tag = c.u8("node tag").map_err(|e| fail(&c, e))?;
        let id = match tag {
            NODE_INT => intern::mk_int(c.i64("int node").map_err(|e| fail(&c, e))?),
            NODE_STR => {
                let s: Arc<str> = Arc::from(c.str("string node").map_err(|e| fail(&c, e))?);
                intern::mk_str(&s)
            }
            NODE_ATOM => {
                intern::mk_atom(Symbol::intern(c.str("atom node").map_err(|e| fail(&c, e))?))
            }
            NODE_COMPOUND => {
                let functor = Symbol::intern(c.str("functor name").map_err(|e| fail(&c, e))?);
                let args = child_ids(&mut c, &ids).map_err(|e| fail(&c, e))?;
                if args.is_empty() {
                    return Err(fail(&c, "compound node with zero children".into()));
                }
                intern::mk_compound(functor, args)
            }
            NODE_SET => {
                // Writer emitted the canonical (sorted, deduped) element
                // order, but a hostile file may not have — re-canonicalize.
                intern::mk_set(child_ids(&mut c, &ids).map_err(|e| fail(&c, e))?)
            }
            other => return Err(fail(&c, format!("unknown node tag {other}"))),
        };
        ids.push(id);
    }

    // Relations.
    let rel_count = c.u32("relation count").map_err(|e| fail(&c, e))? as usize;
    if rel_count > body.len() {
        return Err(fail(
            &c,
            format!("relation count {rel_count} exceeds snapshot size"),
        ));
    }
    let mut db = Database::new();
    let mut row = Vec::new();
    for _ in 0..rel_count {
        let name = c.str("relation name").map_err(|e| fail(&c, e))?;
        let pred = Symbol::intern(name);
        let arity = c.u32("relation arity").map_err(|e| fail(&c, e))? as usize;
        let nrows = c.u32("relation row count").map_err(|e| fail(&c, e))? as usize;
        if arity.saturating_mul(nrows) > c.remaining() / 4 + 1 {
            return Err(fail(
                &c,
                format!("relation {name}: {nrows}×{arity} rows exceed remaining bytes"),
            ));
        }
        // Materialize the relation even when empty, preserving arity.
        db.relation_mut(pred, arity);
        for _ in 0..nrows {
            row.clear();
            for _ in 0..arity {
                let idx = c.u32("row value index").map_err(|e| fail(&c, e))? as usize;
                row.push(*ids.get(idx).ok_or_else(|| {
                    fail(
                        &c,
                        format!("row value index {idx} out of range ({} nodes)", ids.len()),
                    )
                })?);
            }
            db.insert_id_slice(pred, &row);
        }
    }
    if !c.is_empty() {
        return Err(fail(
            &c,
            format!("{} bytes of trailing garbage", c.remaining()),
        ));
    }
    Ok((db, seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_value::{Fact, Value};

    fn sample_db() -> Database {
        let mut db = Database::new();
        for i in 0..20 {
            db.insert(Fact::new("edge", vec![Value::int(i), Value::int(i + 1)]));
        }
        db.insert(Fact::new("flag", vec![]));
        db.insert(Fact::new(
            "mix",
            vec![
                Value::str("hello"),
                Value::atom("world"),
                Value::compound(
                    "pair",
                    vec![
                        Value::int(1),
                        Value::set(vec![Value::int(3), Value::int(2)]),
                    ],
                ),
            ],
        ));
        // Tombstones: removed rows must not appear in the snapshot.
        db.insert(Fact::new("edge", vec![Value::int(99), Value::int(100)]));
        db.remove(&Fact::new("edge", vec![Value::int(99), Value::int(100)]));
        db
    }

    #[test]
    fn snapshot_round_trips() {
        let db = sample_db();
        let bytes = encode(&db, 42);
        let (got, seq) = decode(&bytes).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(got.dump(), db.dump());
        assert_eq!(got.num_facts(), db.num_facts());
    }

    #[test]
    fn empty_database_round_trips() {
        let db = Database::new();
        let bytes = encode(&db, 0);
        let (got, seq) = decode(&bytes).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(got.num_facts(), 0);
    }

    #[test]
    fn shared_structure_is_stored_once() {
        let mut db = Database::new();
        let big = Value::compound("blob", (0..50).map(Value::int).collect::<Vec<_>>());
        for i in 0..100 {
            db.insert(Fact::new("p", vec![Value::int(i), big.clone()]));
        }
        let bytes = encode(&db, 1);
        // 100 rows × a 51-node term stored per-row would need tens of
        // kilobytes; shared storage keeps it near one copy.
        assert!(bytes.len() < 4000, "snapshot is {} bytes", bytes.len());
        let (got, _) = decode(&bytes).unwrap();
        assert_eq!(got.dump(), db.dump());
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let clean = encode(&sample_db(), 7);
        // Truncations.
        for cut in 0..clean.len() {
            assert!(decode(&clean[..cut]).is_err(), "prefix {cut} decoded");
        }
        // Bit flips: the CRC (or magic check) catches every one.
        for byte in 0..clean.len() {
            let mut bad = clean.clone();
            bad[byte] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at {byte} undetected");
        }
    }

    #[test]
    fn hostile_structure_is_rejected() {
        // Forge a snapshot with a forward child reference and a fresh CRC:
        // structural validation has to catch what the checksum cannot.
        let mut body = Vec::new();
        body.extend_from_slice(SNAP_MAGIC);
        put_u32(&mut body, SNAP_VERSION);
        put_u32(&mut body, 0);
        put_u64(&mut body, 1);
        put_u32(&mut body, 1); // one node…
        body.push(NODE_SET);
        put_u32(&mut body, 1);
        put_u32(&mut body, 5); // …whose child is node 5
        put_u32(&mut body, 0); // no relations
        let crc = crc32(&body);
        put_u32(&mut body, crc);
        let err = decode(&body).unwrap_err();
        match err {
            WalError::Corrupt { detail, .. } => assert!(detail.contains("child index"), "{detail}"),
            other => panic!("unexpected error {other}"),
        }
    }
}
