//! The write-ahead log file: header and record framing.
//!
//! ```text
//! header (24 bytes):  "LDL1WAL\0"  version:u32  reserved:u32  base_seq:u64
//! record (16 + len):  len:u32  crc:u32  seq:u64  payload[len]
//! ```
//!
//! `crc` is CRC-32 over `seq ++ payload`, so a record whose length field,
//! sequence number, or payload was torn by a crash fails verification.
//! Sequence numbers are consecutive starting at `base_seq + 1` — the
//! sequence the installed snapshot covers — which catches a log spliced
//! from the wrong generation.
//!
//! [`scan`] walks the record stream and classifies the first invalid
//! record: everything before it is the recoverable prefix, everything from
//! it on is a torn tail to truncate. A *torn* tail (too few bytes) and a
//! *corrupt* tail (checksum or sequence mismatch) are both truncated —
//! after a crash mid-write they are indistinguishable.

use crate::codec::{put_u32, put_u64, Cursor};
use crate::crc::Crc32;
use crate::store::Truncation;
use crate::WalError;

/// The log's file name within a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Size of the log header in bytes.
pub const WAL_HEADER_LEN: u64 = 24;

pub(crate) const WAL_MAGIC: &[u8; 8] = b"LDL1WAL\0";
pub(crate) const WAL_VERSION: u32 = 1;
/// A record longer than this is a corrupt length field, not a real batch.
pub(crate) const MAX_RECORD_LEN: u32 = 1 << 30;

/// Reject a payload the record framing cannot carry *before* it is
/// written: [`scan`] treats any length over [`MAX_RECORD_LEN`] as a
/// corrupt length field, so an oversized record would be acknowledged and
/// then truncated (with everything after it) on the next recovery — and
/// past `u32::MAX` the length field itself would silently wrap.
pub(crate) fn check_payload_len(len: usize) -> Result<(), WalError> {
    if len as u64 > MAX_RECORD_LEN as u64 {
        return Err(WalError::BatchTooLarge {
            bytes: len as u64,
            max: MAX_RECORD_LEN as u64,
        });
    }
    Ok(())
}

/// Serialize the log header for a log that continues from `base_seq`.
pub(crate) fn encode_header(base_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN as usize);
    out.extend_from_slice(WAL_MAGIC);
    put_u32(&mut out, WAL_VERSION);
    put_u32(&mut out, 0); // reserved
    put_u64(&mut out, base_seq);
    out
}

/// Serialize one record. The payload must already have passed
/// [`check_payload_len`].
pub(crate) fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(check_payload_len(payload.len()).is_ok());
    let mut crc = Crc32::new();
    crc.update(&seq.to_le_bytes()).update(payload);
    let mut out = Vec::with_capacity(16 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc.finish());
    put_u64(&mut out, seq);
    out.extend_from_slice(payload);
    out
}

/// The result of scanning a log file's bytes.
pub(crate) struct Scan {
    /// `base_seq` from the header.
    pub base_seq: u64,
    /// Valid records, in order: `(seq, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Byte length of the valid prefix (header + whole valid records).
    pub valid_len: u64,
    /// The torn/corrupt tail, if any bytes past `valid_len` existed.
    pub truncated: Option<Truncation>,
}

/// Scan a log file's bytes into its valid record prefix.
///
/// Returns `Err(Corrupt)` only for damage that cannot be a crash artifact:
/// a bad magic number or an unknown version. Everything after a valid
/// header degrades gracefully into a truncation report.
pub(crate) fn scan(bytes: &[u8]) -> Result<Scan, WalError> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        // A header can only be short if the crash hit the very first
        // write to a fresh log — there cannot be any committed data.
        return Ok(Scan {
            base_seq: 0,
            records: Vec::new(),
            valid_len: 0,
            truncated: (!bytes.is_empty()).then(|| Truncation {
                offset: 0,
                dropped_bytes: bytes.len() as u64,
                reason: "torn log header".into(),
            }),
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(WalError::Corrupt {
            offset: 0,
            detail: "bad log magic (not an LDL1 write-ahead log)".into(),
        });
    }
    let mut c = Cursor::new(&bytes[8..WAL_HEADER_LEN as usize]);
    let version = c.u32("log version").expect("header length checked");
    let _reserved = c.u32("reserved").expect("header length checked");
    let base_seq = c.u64("base sequence").expect("header length checked");
    if version != WAL_VERSION {
        return Err(WalError::Corrupt {
            offset: 8,
            detail: format!("unsupported log version {version} (expected {WAL_VERSION})"),
        });
    }

    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN as usize;
    let mut next_seq = base_seq + 1;
    let truncated = loop {
        if offset == bytes.len() {
            break None;
        }
        let tail = &bytes[offset..];
        let invalid = |reason: String| Truncation {
            offset: offset as u64,
            dropped_bytes: tail.len() as u64,
            reason,
        };
        if tail.len() < 16 {
            break Some(invalid(format!(
                "torn record header ({} bytes)",
                tail.len()
            )));
        }
        let mut h = Cursor::new(tail);
        let len = h.u32("record length").expect("checked") as usize;
        let crc = h.u32("record crc").expect("checked");
        let seq = h.u64("record seq").expect("checked");
        if len as u64 > MAX_RECORD_LEN as u64 {
            break Some(invalid(format!("absurd record length {len}")));
        }
        if tail.len() - 16 < len {
            break Some(invalid(format!(
                "torn record payload (need {len} bytes, have {})",
                tail.len() - 16
            )));
        }
        let payload = &tail[16..16 + len];
        let mut check = Crc32::new();
        check.update(&seq.to_le_bytes()).update(payload);
        if check.finish() != crc {
            break Some(invalid("record checksum mismatch".into()));
        }
        if seq != next_seq {
            break Some(invalid(format!(
                "sequence gap: record {seq} where {next_seq} expected"
            )));
        }
        records.push((seq, payload.to_vec()));
        next_seq += 1;
        offset += 16 + len;
    };
    Ok(Scan {
        base_seq,
        records,
        valid_len: offset as u64,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(base: u64, payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = encode_header(base);
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(base + 1 + i as u64, p));
        }
        bytes
    }

    #[test]
    fn scan_round_trips_records() {
        let bytes = log_with(7, &[b"alpha", b"", b"gamma"]);
        let s = scan(&bytes).unwrap();
        assert_eq!(s.base_seq, 7);
        assert_eq!(s.valid_len, bytes.len() as u64);
        assert!(s.truncated.is_none());
        let seqs: Vec<u64> = s.records.iter().map(|(q, _)| *q).collect();
        assert_eq!(seqs, vec![8, 9, 10]);
        assert_eq!(s.records[0].1, b"alpha");
        assert_eq!(s.records[2].1, b"gamma");
    }

    #[test]
    fn every_cut_point_keeps_the_full_record_prefix() {
        let bytes = log_with(0, &[b"one", b"two", b"three"]);
        let rec_ends: Vec<usize> = {
            let mut ends = vec![WAL_HEADER_LEN as usize];
            for p in [b"one".as_slice(), b"two", b"three"] {
                ends.push(ends.last().unwrap() + 16 + p.len());
            }
            ends
        };
        for cut in WAL_HEADER_LEN as usize..=bytes.len() {
            let s = scan(&bytes[..cut]).unwrap();
            // The valid prefix is the largest record boundary ≤ cut.
            let expect_records = rec_ends.iter().filter(|&&e| e <= cut).count() - 1;
            assert_eq!(s.records.len(), expect_records, "cut at {cut}");
            assert_eq!(s.valid_len, rec_ends[expect_records] as u64);
            assert_eq!(s.truncated.is_some(), cut != rec_ends[expect_records]);
        }
    }

    #[test]
    fn bit_flips_truncate_at_the_flipped_record() {
        let clean = log_with(0, &[b"payload-one", b"payload-two"]);
        let first_end = WAL_HEADER_LEN as usize + 16 + "payload-one".len();
        for byte in WAL_HEADER_LEN as usize..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                let s = scan(&bad).unwrap();
                let t = s.truncated.expect("flip must be detected");
                if byte < first_end {
                    assert_eq!(s.records.len(), 0, "flip at {byte}:{bit}");
                    assert_eq!(t.offset, WAL_HEADER_LEN);
                } else {
                    assert_eq!(s.records.len(), 1, "flip at {byte}:{bit}");
                    assert_eq!(t.offset, first_end as u64);
                }
            }
        }
    }

    #[test]
    fn header_damage_is_corrupt_or_fresh() {
        // Bad magic: unrecoverable (this is not our file).
        let mut bytes = log_with(0, &[b"x"]);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            scan(&bytes),
            Err(WalError::Corrupt { offset: 0, .. })
        ));
        // Unknown version: unrecoverable.
        let mut bytes = log_with(0, &[b"x"]);
        bytes[8] = 99;
        assert!(matches!(scan(&bytes), Err(WalError::Corrupt { .. })));
        // Short header: a crash during the very first write — fresh log.
        let s = scan(&encode_header(0)[..10]).unwrap();
        assert_eq!(s.valid_len, 0);
        assert!(s.truncated.is_some());
        // Empty file: fresh log, nothing torn.
        let s = scan(&[]).unwrap();
        assert_eq!(s.valid_len, 0);
        assert!(s.truncated.is_none());
    }

    #[test]
    fn payload_length_cap_matches_what_scan_accepts() {
        // Everything append admits, scan replays; the first rejected
        // length is exactly the first length scan calls absurd.
        assert!(check_payload_len(0).is_ok());
        assert!(check_payload_len(MAX_RECORD_LEN as usize).is_ok());
        match check_payload_len(MAX_RECORD_LEN as usize + 1) {
            Err(WalError::BatchTooLarge { bytes, max }) => {
                assert_eq!(bytes, MAX_RECORD_LEN as u64 + 1);
                assert_eq!(max, MAX_RECORD_LEN as u64);
            }
            other => panic!("expected BatchTooLarge, got {other:?}"),
        }
        // Past u32::MAX the length field would wrap; still rejected.
        assert!(check_payload_len((1usize << 32) + 5).is_err());
    }

    #[test]
    fn sequence_gap_truncates() {
        let mut bytes = encode_header(5);
        bytes.extend_from_slice(&encode_record(6, b"ok"));
        bytes.extend_from_slice(&encode_record(9, b"gap"));
        let s = scan(&bytes).unwrap();
        assert_eq!(s.records.len(), 1);
        let t = s.truncated.unwrap();
        assert!(t.reason.contains("sequence gap"), "{}", t.reason);
    }
}
