//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every log record and the snapshot file. Table-driven, computed
//! at compile time; no dependencies.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 state, for checksumming discontiguous parts (the
/// record's sequence number and payload) without concatenating them.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub(crate) fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    pub(crate) fn update(&mut self, data: &[u8]) -> &mut Self {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
        self
    }

    pub(crate) fn finish(&self) -> u32 {
        !self.state
    }
}

/// CRC-32 of one contiguous buffer.
pub fn crc32(data: &[u8]) -> u32 {
    Crc32::new().update(data).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_contiguous() {
        let whole = crc32(b"hello, world");
        let mut s = Crc32::new();
        s.update(b"hello").update(b", ").update(b"world");
        assert_eq!(s.finish(), whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"record payload bytes".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
