//! Structural binary serialization of facts and mutation batches.
//!
//! Everything is encoded by *structure* — integer payloads, UTF-8 names,
//! child values in place — never by interner id. Two processes that
//! interned the same values in different orders therefore produce and
//! accept identical bytes, which is what makes a write-ahead log written
//! by one process replayable by any other (or by the same process after a
//! restart with an empty interner).
//!
//! All integers are little-endian. Decoding is defensive: every length is
//! bounds-checked against the remaining buffer and value nesting is
//! depth-limited, so a corrupt payload that slipped past the CRC (or a
//! deliberately hostile file) produces an error, never a panic or an
//! absurd allocation.

use std::sync::Arc;

use ldl_value::{Fact, Symbol, Value};

/// Value tags. Stable on-disk numbers — append-only.
const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_ATOM: u8 = 2;
const TAG_COMPOUND: u8 = 3;
const TAG_SET: u8 = 4;

/// Values nest only as deep as the parser (128 levels) plus what grouping
/// builds on top; 512 is far beyond any legitimate value and small enough
/// that recursive decoding cannot overflow the stack.
const MAX_DEPTH: u32 = 512;

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over an encoded buffer. Every read either
/// returns data that was fully present or a description of what was
/// missing — offsets are tracked so corruption reports can point at the
/// exact byte.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Current byte offset from the start of the buffer.
    pub(crate) fn offset(&self) -> usize {
        self.pos
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self, what: &str) -> Result<i64, String> {
        Ok(self.u64(what)? as i64)
    }

    pub(crate) fn str(&mut self, what: &str) -> Result<&'a str, String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|e| format!("{what} is not UTF-8: {e}"))
    }
}

pub(crate) fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(TAG_INT);
            put_u64(out, *i as u64);
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Atom(a) => {
            out.push(TAG_ATOM);
            put_str(out, a.as_str());
        }
        Value::Compound(c) => {
            out.push(TAG_COMPOUND);
            put_str(out, c.functor().as_str());
            put_u32(out, c.args().len() as u32);
            for a in c.args() {
                encode_value(a, out);
            }
        }
        Value::Set(s) => {
            out.push(TAG_SET);
            put_u32(out, s.len() as u32);
            for e in s.iter() {
                encode_value(e, out);
            }
        }
    }
}

pub(crate) fn decode_value(c: &mut Cursor<'_>, depth: u32) -> Result<Value, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("value nesting exceeds {MAX_DEPTH} levels"));
    }
    let tag = c.u8("value tag")?;
    match tag {
        TAG_INT => Ok(Value::Int(c.i64("int payload")?)),
        TAG_STR => Ok(Value::Str(Arc::from(c.str("string payload")?))),
        TAG_ATOM => Ok(Value::Atom(Symbol::intern(c.str("atom name")?))),
        TAG_COMPOUND => {
            let functor = Symbol::intern(c.str("functor name")?);
            let argc = c.u32("compound arity")? as usize;
            // Each argument takes ≥ 1 byte, so an arity beyond the buffer
            // remainder is corruption, not a big term.
            if argc > c.remaining() {
                return Err(format!("compound arity {argc} exceeds remaining bytes"));
            }
            if argc == 0 {
                return Err("compound with zero arity (should be an atom)".into());
            }
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(decode_value(c, depth + 1)?);
            }
            Ok(Value::compound(functor, args))
        }
        TAG_SET => {
            let n = c.u32("set size")? as usize;
            if n > c.remaining() {
                return Err(format!("set size {n} exceeds remaining bytes"));
            }
            let mut elems = Vec::with_capacity(n);
            for _ in 0..n {
                elems.push(decode_value(c, depth + 1)?);
            }
            Ok(Value::set(elems))
        }
        other => Err(format!("unknown value tag {other}")),
    }
}

pub(crate) fn encode_fact(f: &Fact, out: &mut Vec<u8>) {
    put_str(out, f.pred().as_str());
    put_u32(out, f.args().len() as u32);
    for a in f.args() {
        encode_value(a, out);
    }
}

pub(crate) fn decode_fact(c: &mut Cursor<'_>) -> Result<Fact, String> {
    let pred = Symbol::intern(c.str("predicate name")?);
    let argc = c.u32("fact arity")? as usize;
    if argc > c.remaining() {
        return Err(format!("fact arity {argc} exceeds remaining bytes"));
    }
    let mut args = Vec::with_capacity(argc);
    for _ in 0..argc {
        args.push(decode_value(c, 0)?);
    }
    Ok(Fact::from_arc(pred, args.into()))
}

/// Encode one committed mutation batch — the net deletions and insertions,
/// in commit order — as a log-record payload.
pub fn encode_batch(del: &[Fact], ins: &[Fact]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 32 * (del.len() + ins.len()));
    put_u32(&mut out, del.len() as u32);
    for f in del {
        encode_fact(f, &mut out);
    }
    put_u32(&mut out, ins.len() as u32);
    for f in ins {
        encode_fact(f, &mut out);
    }
    out
}

/// Decode a log-record payload back into its `(deletions, insertions)`.
/// Fails (with a description, for a [`crate::WalError::Corrupt`] report)
/// on any truncation, bad tag, or trailing garbage.
pub fn decode_batch(payload: &[u8]) -> Result<(Vec<Fact>, Vec<Fact>), String> {
    let mut c = Cursor::new(payload);
    let ndel = c.u32("deletion count")? as usize;
    if ndel > c.remaining() {
        return Err(format!("deletion count {ndel} exceeds remaining bytes"));
    }
    let mut del = Vec::with_capacity(ndel);
    for _ in 0..ndel {
        del.push(decode_fact(&mut c)?);
    }
    let nins = c.u32("insertion count")? as usize;
    if nins > c.remaining() {
        return Err(format!("insertion count {nins} exceeds remaining bytes"));
    }
    let mut ins = Vec::with_capacity(nins);
    for _ in 0..nins {
        ins.push(decode_fact(&mut c)?);
    }
    if !c.is_empty() {
        return Err(format!(
            "{} bytes of trailing garbage after batch",
            c.remaining()
        ));
    }
    Ok((del, ins))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_facts() -> Vec<Fact> {
        vec![
            Fact::new("p", vec![]),
            Fact::new("edge", vec![Value::int(1), Value::int(-7)]),
            Fact::new("s", vec![Value::str("hi \"there\"")]),
            Fact::new("a", vec![Value::atom("john")]),
            Fact::new(
                "deep",
                vec![Value::compound(
                    "f",
                    vec![
                        Value::set(vec![Value::int(2), Value::int(1)]),
                        Value::compound("g", vec![Value::empty_set()]),
                    ],
                )],
            ),
        ]
    }

    #[test]
    fn batch_round_trip() {
        let facts = sample_facts();
        let payload = encode_batch(&facts[..2], &facts[2..]);
        let (del, ins) = decode_batch(&payload).unwrap();
        assert_eq!(del, facts[..2]);
        assert_eq!(ins, facts[2..]);
        // Empty batch round-trips too.
        let (d, i) = decode_batch(&encode_batch(&[], &[])).unwrap();
        assert!(d.is_empty() && i.is_empty());
    }

    #[test]
    fn encoding_is_structural_and_deterministic() {
        // Set spelling order does not matter: canonical sets encode
        // identically.
        let a = Fact::new("q", vec![Value::set(vec![Value::int(1), Value::int(2)])]);
        let b = Fact::new("q", vec![Value::set(vec![Value::int(2), Value::int(1)])]);
        assert_eq!(encode_batch(&[], &[a]), encode_batch(&[], &[b]));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let payload = encode_batch(&[], &sample_facts());
        for cut in 0..payload.len() {
            let res = decode_batch(&payload[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        // Trailing garbage.
        let mut payload = encode_batch(&[], &[Fact::new("p", vec![Value::int(1)])]);
        payload.push(0);
        assert!(decode_batch(&payload).is_err());
        // Every single-bit corruption either decodes to *something* (if it
        // only changed a payload constant) or errors — never panics.
        let clean = encode_batch(&[], &sample_facts());
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                let _ = decode_batch(&bad);
            }
        }
        // A hostile length prefix cannot force a huge allocation.
        let mut hostile = Vec::new();
        put_u32(&mut hostile, u32::MAX);
        assert!(decode_batch(&hostile).is_err());
    }
}
