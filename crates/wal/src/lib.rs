#![warn(missing_docs)]

//! Durability layer for the LDL1 engine: a write-ahead log plus periodic
//! snapshots of the extensional database, with crash recovery.
//!
//! The in-memory engine is already transactional — mutation batches commit
//! atomically and aborted batches roll back bit-identically — but every
//! model dies with the process. This crate makes the *extensional*
//! database durable, treating the committed mutation batch (the engine's
//! atomic unit of change, after U-Datalog) as the logged unit:
//!
//! * [`Store`] owns a data directory holding an append-only log
//!   (`wal.log`) of committed batches as length-prefixed,
//!   CRC32-checksummed, monotonically sequenced records, plus the latest
//!   snapshot (`snapshot.bin`) of the whole database, installed by atomic
//!   rename.
//! * Values are serialized **structurally** (constants and names, never
//!   raw [`ldl_value::ValueId`]s or [`ldl_value::Symbol`] ids), so
//!   recovery is independent of the interning order of the writing
//!   process — the ids a recovering process assigns may differ; the
//!   values cannot.
//! * [`Store::open`] recovers: load the latest valid snapshot, replay the
//!   log's tail, and *truncate* a torn or corrupt trailing record
//!   (reporting it in [`RecoveryInfo`]) instead of failing — a crash mid
//!   write loses at most the batch that was being committed.
//! * `fsync` policy is configurable per store ([`SyncPolicy`]):
//!   every-commit durability, batched group commit, or none.
//!
//! All file writes go through the [`WalFile`] trait so tests can inject
//! I/O faults — killed writes, flipped bits, dropped syncs — and prove
//! recovery against them (see `ldl-testkit`'s `fault` module).

mod codec;
mod crc;
mod log;
mod snapshot;
mod store;

pub use codec::{decode_batch, encode_batch};
pub use crc::crc32;
pub use log::{WAL_FILE, WAL_HEADER_LEN};
pub use snapshot::SNAPSHOT_FILE;
pub use store::{AppendInfo, CheckpointInfo, RecoveryInfo, Store, StoreOptions, Truncation};

use std::fmt;
use std::io;

/// When the log forces written records to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every appended record: a batch whose commit returned
    /// is durable. The default.
    #[default]
    Always,
    /// Group commit: `fsync` once every `n` appended records (and on
    /// checkpoint). A crash loses at most the records since the last sync.
    EveryN(u32),
    /// Never `fsync`; leave flushing to the OS. A crash may lose any
    /// suffix of the log, but recovery still sees a valid prefix.
    Never,
}

/// Any error the durability layer can raise.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A file's *non-recoverable* region is damaged: a bad magic number or
    /// version, a snapshot failing its checksum, or a log whose records
    /// disagree with the installed snapshot. (A torn or corrupt *tail* of
    /// the log is not an error — recovery truncates it and reports a
    /// [`Truncation`].)
    Corrupt {
        /// Byte offset of the damage within the offending file.
        offset: u64,
        /// What was wrong there.
        detail: String,
    },
    /// A batch's encoded payload exceeds what the record framing can
    /// carry: recovery's scan treats any length over the cap as a corrupt
    /// length field, so such a record would be acknowledged and then
    /// silently truncated on the next open. The batch was **not**
    /// appended and the store is not poisoned — split the batch and
    /// retry.
    BatchTooLarge {
        /// Encoded payload size in bytes.
        bytes: u64,
        /// The largest payload one record can carry.
        max: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "durability I/O error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "corrupt durable state at byte {offset}: {detail}")
            }
            WalError::BatchTooLarge { bytes, max } => write!(
                f,
                "batch encodes to {bytes} bytes, over the {max}-byte record \
                 cap; split the batch (nothing was appended)"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Corrupt { .. } | WalError::BatchTooLarge { .. } => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// The byte sink the log appends through.
///
/// Production code uses a [`std::fs::File`]; tests swap in a fault
/// injector (`ldl_testkit::fault::IoFault`) that kills writes at a chosen
/// byte, flips bits, or drops unsynced data, to prove recovery handles
/// every way a real disk can lose a tail.
pub trait WalFile: Send {
    /// Append `buf` in its entirety (or fail).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Force previously written bytes to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
}

impl WalFile for std::fs::File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }
}
