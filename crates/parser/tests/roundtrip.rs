//! Property: pretty-printing any rule and reparsing it yields the same AST.
//!
//! The generator avoids the one deliberate print/parse asymmetry: a ground
//! `Term::Const(Value::Set(..))` prints as `{…}`, which reparses as the
//! equivalent `Term::SetEnum` — so sets are generated as `SetEnum` here
//! (semantically identical, structurally distinct).

use ldl_ast::literal::{Atom, Literal};
use ldl_ast::rule::Rule;
use ldl_ast::term::Term;
use ldl_parser::parse_rule;
use ldl_testkit::{cases, Rng};
use ldl_value::arith::ArithOp;

fn rand_term(rng: &mut Rng, depth: u32) -> Term {
    if depth == 0 || rng.chance(1, 2) {
        match rng.index(6) {
            0 => Term::var(["X", "Y", "Zz"][rng.index(3)]),
            1 => Term::Anon,
            2 => Term::int(rng.range(-9, 9)),
            3 => Term::atom(["a", "bee", "c1"][rng.index(3)]),
            4 => Term::empty_set(),
            _ => Term::Const(ldl_value::Value::str("s x")),
        }
    } else {
        match rng.index(4) {
            0 => {
                let f = *rng.pick(&["f", "g"]);
                let n = 1 + rng.index(2);
                Term::compound(f, (0..n).map(|_| rand_term(rng, depth - 1)).collect())
            }
            1 => {
                let n = 1 + rng.index(2);
                Term::SetEnum((0..n).map(|_| rand_term(rng, depth - 1)).collect())
            }
            2 => Term::Scons(
                Box::new(rand_term(rng, depth - 1)),
                Box::new(rand_term(rng, depth - 1)),
            ),
            _ => Term::Arith(
                ArithOp::Add,
                Box::new(rand_term(rng, depth - 1)),
                Box::new(rand_term(rng, depth - 1)),
            ),
        }
    }
}

fn rand_literal(rng: &mut Rng) -> Literal {
    let pred = *rng.pick(&["p", "q", "r"]);
    let args: Vec<Term> = (0..rng.index(3)).map(|_| rand_term(rng, 3)).collect();
    Literal {
        positive: rng.chance(1, 2),
        atom: Atom::new(pred, args),
    }
}

fn rand_rule(rng: &mut Rng) -> Rule {
    let mut head_args: Vec<Term> = (0..rng.index(3)).map(|_| rand_term(rng, 3)).collect();
    if rng.chance(1, 2) {
        head_args.push(Term::group_var("G"));
    }
    let body: Vec<Literal> = (0..rng.index(3)).map(|_| rand_literal(rng)).collect();
    // Facts with variables are well-formedness errors but must still
    // round-trip syntactically.
    Rule::new(Atom::new("h", head_args), body)
}

#[test]
fn rule_display_reparses() {
    cases(256, |rng| {
        let rule = rand_rule(rng);
        let text = rule.to_string();
        let reparsed =
            parse_rule(&text).unwrap_or_else(|e| panic!("failed to reparse {text:?}: {e}"));
        assert_eq!(&reparsed, &rule, "text was {text}");
    });
}

#[test]
fn term_display_reparses() {
    cases(256, |rng| {
        let t = rand_term(rng, 3);
        let text = t.to_string();
        let reparsed = ldl_parser::parse_term(&text)
            .unwrap_or_else(|e| panic!("failed to reparse {text:?}: {e}"));
        assert_eq!(&reparsed, &t, "text was {text}");
    });
}
