//! Property: pretty-printing any rule and reparsing it yields the same AST.
//!
//! The generator avoids the one deliberate print/parse asymmetry: a ground
//! `Term::Const(Value::Set(..))` prints as `{…}`, which reparses as the
//! equivalent `Term::SetEnum` — so sets are generated as `SetEnum` here
//! (semantically identical, structurally distinct).

use ldl_ast::literal::{Atom, Literal};
use ldl_ast::rule::Rule;
use ldl_ast::term::Term;
use ldl_parser::parse_rule;
use ldl_value::arith::ArithOp;
use proptest::prelude::*;

fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        prop_oneof![Just("X"), Just("Y"), Just("Zz")].prop_map(Term::var),
        Just(Term::Anon),
        (-9i64..9).prop_map(Term::int),
        prop_oneof![Just("a"), Just("bee"), Just("c1")].prop_map(Term::atom),
        Just(Term::empty_set()),
        Just(Term::Const(ldl_value::Value::str("s x"))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![Just("f"), Just("g")],
                prop::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(f, args)| Term::compound(f, args)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Term::SetEnum),
            (inner.clone(), inner.clone()).prop_map(|(h, t)| {
                Term::Scons(Box::new(h), Box::new(t))
            }),
            (inner.clone(), inner).prop_map(|(l, r)| {
                Term::Arith(ArithOp::Add, Box::new(l), Box::new(r))
            }),
        ]
    })
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    (
        prop_oneof![Just("p"), Just("q"), Just("r")],
        prop::collection::vec(term_strategy(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(pred, args, positive)| Literal {
            positive,
            atom: Atom::new(pred, args),
        })
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        prop::collection::vec(term_strategy(), 0..3),
        any::<bool>(),
        prop::collection::vec(literal_strategy(), 0..3),
    )
        .prop_map(|(mut head_args, group, body)| {
            if group {
                head_args.push(Term::group_var("G"));
            }
            // Facts with variables are well-formedness errors but must still
            // round-trip syntactically.
            Rule::new(Atom::new("h", head_args), body)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rule_display_reparses(rule in rule_strategy()) {
        let text = rule.to_string();
        let reparsed = parse_rule(&text)
            .unwrap_or_else(|e| panic!("failed to reparse {text:?}: {e}"));
        prop_assert_eq!(&reparsed, &rule, "text was {}", text);
    }

    #[test]
    fn term_display_reparses(t in term_strategy()) {
        let text = t.to_string();
        let reparsed = ldl_parser::parse_term(&text)
            .unwrap_or_else(|e| panic!("failed to reparse {text:?}: {e}"));
        prop_assert_eq!(&reparsed, &t, "text was {}", text);
    }
}
