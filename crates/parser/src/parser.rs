//! Recursive-descent parser.

use ldl_ast::literal::{Atom, Literal};
use ldl_ast::program::Program;
use ldl_ast::rule::Rule;
use ldl_ast::term::{tuple_functor, Term, Var};
use ldl_value::arith::{ArithOp, CmpOp};
use ldl_value::Value;

use crate::error::{ParseError, Pos};
use crate::lexer::{lex, Spanned, Tok};

/// Maximum term/set nesting depth the recursive-descent parser accepts.
/// The parser recurses once per nesting level, so unbounded input like a
/// 100k-deep `scons` chain would overflow the stack; past this depth it
/// returns a parse error instead. Debug builds spend roughly 8 KiB of
/// stack per level (measured: depth 200 fits a 2 MiB thread, depth 300
/// does not), so the limit is set to keep worst-case recursion near 1 MiB
/// — safe on a default 2 MiB spawned thread — while still being far
/// deeper than any realistic program nests. Lists and argument lists are
/// parsed iteratively and do not count toward this limit.
const MAX_DEPTH: usize = 128;

struct Parser {
    toks: Vec<Spanned>,
    idx: usize,
    /// Current term-nesting recursion depth (see [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            idx: 0,
            depth: 0,
        })
    }

    fn pos(&self) -> Pos {
        self.toks
            .get(self.idx)
            .or_else(|| self.toks.last())
            .map(|s| s.pos)
            .unwrap_or(Pos { line: 1, col: 1 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.idx + 1).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|s| s.tok.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos(), message)
    }

    fn at_end(&self) -> bool {
        self.idx >= self.toks.len()
    }

    // ---- terms -------------------------------------------------------

    /// term := additive
    fn term(&mut self) -> Result<Term, ParseError> {
        self.additive()
    }

    fn additive(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.idx += 1;
            let rhs = self.multiplicative()?;
            lhs = Term::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                Some(Tok::Mod) => ArithOp::Mod,
                _ => break,
            };
            self.idx += 1;
            let rhs = self.primary()?;
            lhs = Term::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Term, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!(
                "term nesting deeper than {MAX_DEPTH} levels; deeper terms \
                 would overflow the parser stack"
            )));
        }
        self.depth += 1;
        let out = self.primary_inner();
        self.depth -= 1;
        out
    }

    fn primary_inner(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Term::int(i)),
            Some(Tok::Minus) => match self.next() {
                Some(Tok::Int(i)) => Ok(Term::int(-i)),
                _ => Err(self.err("expected integer after unary '-'")),
            },
            Some(Tok::Str(s)) => Ok(Term::Const(Value::str(&s))),
            Some(Tok::Var(v)) => Ok(Term::Var(Var::new(&v))),
            Some(Tok::Anon) => Ok(Term::Anon),
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    let args = self.term_list(&Tok::RParen)?;
                    self.expect(&Tok::RParen, "')'")?;
                    if name == "scons" {
                        if args.len() != 2 {
                            return Err(self.err("scons takes exactly 2 arguments"));
                        }
                        let mut it = args.into_iter();
                        let h = it.next().expect("len checked");
                        let t = it.next().expect("len checked");
                        Ok(Term::Scons(Box::new(h), Box::new(t)))
                    } else if args.is_empty() {
                        Err(self.err(format!("empty argument list for {name}")))
                    } else {
                        Ok(Term::Compound(name.as_str().into(), args))
                    }
                } else {
                    Ok(Term::atom(&name))
                }
            }
            Some(Tok::LBrace) => {
                if self.eat(&Tok::RBrace) {
                    return Ok(Term::empty_set());
                }
                let elems = self.term_list(&Tok::RBrace)?;
                self.expect(&Tok::RBrace, "'}'")?;
                Ok(Term::SetEnum(elems))
            }
            Some(Tok::LBracket) => {
                // Lists (§2.1 Remark: "LDL1 has lists … handled in the
                // usual manner"): `[a, b | T]` is sugar for
                // cons(a, cons(b, T)), `[]` for the atom nil.
                if self.eat(&Tok::RBracket) {
                    return Ok(Term::atom("nil"));
                }
                let mut elems = vec![self.term()?];
                while self.eat(&Tok::Comma) {
                    elems.push(self.term()?);
                }
                let tail = if self.eat(&Tok::Pipe) {
                    self.term()?
                } else {
                    Term::atom("nil")
                };
                self.expect(&Tok::RBracket, "']'")?;
                Ok(elems
                    .into_iter()
                    .rev()
                    .fold(tail, |acc, e| Term::Compound("cons".into(), vec![e, acc])))
            }
            Some(Tok::Lt) => {
                let inner = self.term()?;
                self.expect(&Tok::Gt, "'>' closing a grouping term")?;
                Ok(Term::Group(Box::new(inner)))
            }
            Some(Tok::LParen) => {
                let mut elems = vec![self.term()?];
                while self.eat(&Tok::Comma) {
                    elems.push(self.term()?);
                }
                self.expect(&Tok::RParen, "')'")?;
                if elems.len() == 1 {
                    // `(t)` is just parenthesization.
                    Ok(elems.pop().expect("len checked"))
                } else {
                    Ok(Term::Compound(tuple_functor(), elems))
                }
            }
            other => Err(self.err(format!("expected a term, found {other:?}"))),
        }
    }

    fn term_list(&mut self, terminator: &Tok) -> Result<Vec<Term>, ParseError> {
        let mut out = Vec::new();
        if self.peek() == Some(terminator) {
            return Ok(out);
        }
        out.push(self.term()?);
        while self.eat(&Tok::Comma) {
            out.push(self.term()?);
        }
        Ok(out)
    }

    // ---- literals ----------------------------------------------------

    fn comparison_op(&self) -> Option<CmpOp> {
        match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        }
    }

    /// A functional built-in used as a predicate, e.g. `+(C1, C2, C)`.
    fn functional_builtin(&mut self) -> Result<Option<Atom>, ParseError> {
        let name = match (self.peek(), self.peek2()) {
            (Some(Tok::Plus), Some(Tok::LParen)) => "+",
            (Some(Tok::Minus), Some(Tok::LParen)) => "-",
            (Some(Tok::Star), Some(Tok::LParen)) => "*",
            (Some(Tok::Slash), Some(Tok::LParen)) => "/",
            (Some(Tok::Mod), Some(Tok::LParen)) => "mod",
            (Some(Tok::Eq), Some(Tok::LParen)) => "=",
            (Some(Tok::Ne), Some(Tok::LParen)) => "/=",
            (Some(Tok::Lt), Some(Tok::LParen)) => "<",
            (Some(Tok::Le), Some(Tok::LParen)) => "<=",
            (Some(Tok::Gt), Some(Tok::LParen)) => ">",
            (Some(Tok::Ge), Some(Tok::LParen)) => ">=",
            _ => return Ok(None),
        };
        self.idx += 2; // op and '('
        let args = self.term_list(&Tok::RParen)?;
        self.expect(&Tok::RParen, "')'")?;
        Ok(Some(Atom::new(name, args)))
    }

    fn atom_or_comparison(&mut self) -> Result<Atom, ParseError> {
        if let Some(atom) = self.functional_builtin()? {
            return Ok(atom);
        }
        let lhs = self.term()?;
        if let Some(op) = self.comparison_op() {
            self.idx += 1;
            let rhs = self.term()?;
            return Ok(Atom::new(op.name(), vec![lhs, rhs]));
        }
        term_to_atom(lhs).map_err(|m| self.err(m))
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if self.eat(&Tok::Tilde) {
            Ok(Literal::neg(self.atom_or_comparison()?))
        } else {
            Ok(Literal::pos(self.atom_or_comparison()?))
        }
    }

    // ---- rules and programs ------------------------------------------

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.atom_or_comparison()?;
        if CmpOp::from_name(head.pred.as_str()).is_some()
            || ArithOp::from_name(head.pred.as_str()).is_some()
        {
            return Err(self.err(format!(
                "built-in predicate {} cannot be a rule head",
                head.pred
            )));
        }
        let body = if self.eat(&Tok::Arrow) {
            let mut b = vec![self.literal()?];
            while self.eat(&Tok::Comma) {
                b.push(self.literal()?);
            }
            b
        } else {
            Vec::new()
        };
        self.expect(&Tok::Dot, "'.' ending a rule")?;
        Ok(Rule::new(head, body))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut p = Program::new();
        while !self.at_end() {
            p.push(self.rule()?);
        }
        Ok(p)
    }
}

/// A parsed term that should have been a predicate application.
fn term_to_atom(t: Term) -> Result<Atom, String> {
    match t {
        Term::Compound(f, args) => {
            if f == tuple_functor() {
                Err("a tuple is not a predicate".into())
            } else {
                Ok(Atom::new(f, args))
            }
        }
        Term::Const(Value::Atom(s)) => Ok(Atom::new(s, vec![])),
        other => Err(format!("expected a predicate, found term {other}")),
    }
}

/// Parse a whole program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.program()
}

/// Parse a single rule (must consume the whole input).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let r = p.rule()?;
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(r)
}

/// Parse a single term (must consume the whole input).
pub fn parse_term(src: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.term()?;
    if !p.at_end() {
        return Err(p.err("trailing input after term"));
    }
    Ok(t)
}

/// Parse a query atom: `?- young(john, S).` (the `?-` and `.` are optional).
pub fn parse_atom(src: &str) -> Result<Atom, ParseError> {
    let mut p = Parser::new(src)?;
    let _ = p.eat(&Tok::Query);
    let a = p.atom_or_comparison()?;
    let _ = p.eat(&Tok::Dot);
    if !p.at_end() {
        return Err(p.err("trailing input after query"));
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // A 100k-deep scons chain, parsed on a thread with the default
        // (small) stack: the depth guard must reject the input long before
        // the recursion endangers the stack. Debug builds burn ~8 KiB of
        // stack per nesting level, so if the guard regressed this would
        // overflow well before reaching the bottom of the chain.
        let handle = std::thread::Builder::new()
            .stack_size(2 * 1024 * 1024)
            .spawn(|| {
                let depth = 100_000;
                let mut src = String::with_capacity(depth * 12 + 16);
                src.push_str("p(");
                for _ in 0..depth {
                    src.push_str("scons(a, ");
                }
                src.push_str("{}");
                for _ in 0..depth {
                    src.push(')');
                }
                src.push_str(").");
                parse_program(&src)
            })
            .unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");

        // Depth just below the limit still parses (the guard counts
        // nesting, not tokens).
        let mut ok = String::from("p(");
        for _ in 0..64 {
            ok.push_str("scons(a, ");
        }
        ok.push_str("{}");
        for _ in 0..64 {
            ok.push(')');
        }
        ok.push_str(").");
        parse_program(&ok).unwrap();
    }

    #[test]
    fn parse_ancestor_program() {
        let p = parse_program(
            "ancestor(X, Y) <- parent(X, Y).\n\
             ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.rules[1].to_string(),
            "ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y)."
        );
    }

    #[test]
    fn parse_negation() {
        let r = parse_rule("excl_ancestor(X, Y, Z) <- ancestor(X, Y), ~ancestor(X, Z).").unwrap();
        assert!(!r.body[1].positive);
        assert_eq!(r.body[1].atom.pred.as_str(), "ancestor");
    }

    #[test]
    fn parse_grouping_head() {
        let r = parse_rule("part(P, <Sub>) <- p(P, Sub).").unwrap();
        assert!(r.is_grouping());
        assert_eq!(r.to_string(), "part(P, <Sub>) <- p(P, Sub).");
    }

    #[test]
    fn parse_sets_and_facts() {
        let p = parse_program("r(1). h({1}). w({1, 2}, 7). e({}).").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.rules[1].head.args[0].to_value(),
            Some(Value::set(vec![Value::int(1)]))
        );
        assert_eq!(p.rules[3].head.args[0], Term::empty_set());
    }

    #[test]
    fn parse_book_deal() {
        let r = parse_rule(
            "book_deal({X, Y, Z}) <- book(X, Px), book(Y, Py), book(Z, Pz), \
             Px + Py + Pz < 100.",
        )
        .unwrap();
        assert_eq!(r.body.len(), 4);
        let cmp = &r.body[3].atom;
        assert_eq!(cmp.pred.as_str(), "<");
        assert_eq!(cmp.args[0].to_string(), "((Px + Py) + Pz)");
    }

    #[test]
    fn parse_functional_arith_predicate() {
        let r =
            parse_rule("tc(S, C) <- partition(S, S1, S2), tc(S1, C1), tc(S2, C2), +(C1, C2, C).")
                .unwrap();
        assert_eq!(r.body[3].atom.pred.as_str(), "+");
        assert_eq!(r.body[3].atom.arity(), 3);
    }

    #[test]
    fn parse_scons() {
        let t = parse_term("scons(a, {b})").unwrap();
        assert!(matches!(t, Term::Scons(..)));
        assert_eq!(
            t.to_value(),
            Some(Value::set(vec![Value::atom("a"), Value::atom("b")]))
        );
        assert!(parse_term("scons(a)").is_err());
    }

    #[test]
    fn comparison_vs_grouping_disambiguation() {
        // `<` at term start is grouping; after a term it is comparison.
        let r = parse_rule("q(<X>) <- p(X).").unwrap();
        assert!(r.is_grouping());
        let r2 = parse_rule("q(X) <- p(X), X < 3.").unwrap();
        assert_eq!(r2.body[1].atom.pred.as_str(), "<");
    }

    #[test]
    fn parse_ldl15_head_terms() {
        // (T, <S>, <D>) from §4.2.1 — tuple head term with groupings.
        let r = parse_rule("out((T, <S>, <D>)) <- r(T, S, C, D).").unwrap();
        let h = &r.head.args[0];
        assert_eq!(h.to_string(), "(T, <S>, <D>)");
        // nested: (T, <h(S, <D>)>)
        let r2 = parse_rule("out((T, <h(S, <D>)>)) <- r(T, S, C, D).").unwrap();
        assert_eq!(r2.head.args[0].to_string(), "(T, <h(S, <D>)>)");
    }

    #[test]
    fn parse_query() {
        let a = parse_atom("?- young(john, S).").unwrap();
        assert_eq!(a.pred.as_str(), "young");
        assert_eq!(a.args[0], Term::atom("john"));
        assert_eq!(a.args[1], Term::var("S"));
        // Bare atom accepted too.
        assert_eq!(parse_atom("young(john, S)").unwrap().pred.as_str(), "young");
    }

    #[test]
    fn negative_integers() {
        let t = parse_term("-5").unwrap();
        assert_eq!(t, Term::int(-5));
        let t2 = parse_term("3 - 5").unwrap();
        assert_eq!(t2.to_value(), Some(Value::int(-2)));
    }

    #[test]
    fn arith_precedence() {
        assert_eq!(
            parse_term("1 + 2 * 3").unwrap().to_value(),
            Some(Value::int(7))
        );
        assert_eq!(
            parse_term("(1 + 2) * 3").unwrap().to_value(),
            Some(Value::int(9))
        );
        assert_eq!(
            parse_term("7 mod 3 + 1").unwrap().to_value(),
            Some(Value::int(2))
        );
    }

    #[test]
    fn lists_are_cons_sugar() {
        assert_eq!(parse_term("[]").unwrap(), Term::atom("nil"));
        let t = parse_term("[1, 2]").unwrap();
        assert_eq!(t.to_string(), "[1, 2]");
        assert_eq!(
            t,
            Term::compound(
                "cons",
                vec![
                    Term::int(1),
                    Term::compound("cons", vec![Term::int(2), Term::atom("nil")])
                ]
            )
        );
        // Tail syntax.
        let ht = parse_term("[H | T]").unwrap();
        assert_eq!(
            ht,
            Term::compound("cons", vec![Term::var("H"), Term::var("T")])
        );
        // Lists of sets, sets of lists.
        let mix = parse_term("[{1}, {2, 3}]").unwrap();
        assert!(mix.to_value().is_some());
    }

    #[test]
    fn zero_arity_predicates() {
        let p = parse_program("halt. go <- halt.").unwrap();
        assert_eq!(p.rules[0].head.arity(), 0);
        assert_eq!(p.rules[1].body[0].atom.arity(), 0);
    }

    #[test]
    fn errors_have_positions() {
        let e = parse_program("p(X) <- q(X)").unwrap_err(); // missing dot
        assert!(e.to_string().contains("expected '.'"));
        assert!(parse_rule("<(X, Y) <- p(X, Y).").is_err()); // builtin head
        assert!(parse_program("p(X) <- .").is_err());
        assert!(parse_program("p().").is_err());
    }

    #[test]
    fn strings_and_anon() {
        let r = parse_rule("t(\"hello\", _) <- s(_).").unwrap();
        assert_eq!(r.head.args[0], Term::Const(Value::str("hello")));
        assert_eq!(r.head.args[1], Term::Anon);
    }

    #[test]
    fn round_trip_pretty_then_parse() {
        let srcs = [
            "ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).",
            "part(P, <Sub>) <- p(P, Sub).",
            "q(X) <- p(X), ~r(X).",
            "w({1, 2}, 7).",
        ];
        for s in srcs {
            let r = parse_rule(s).unwrap();
            let printed = r.to_string();
            let r2 = parse_rule(&printed).unwrap();
            assert_eq!(r, r2, "round-trip failed for {s}");
        }
    }
}
