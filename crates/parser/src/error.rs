//! Parse errors with source positions.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexing or parsing error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Where in the source the error was detected.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}
