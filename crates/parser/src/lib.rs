#![warn(missing_docs)]

//! Concrete syntax for LDL1 / LDL1.5.
//!
//! The paper writes rules as `head <-- body` with `¬` for negation and angle
//! brackets for grouping. Our ASCII concrete syntax:
//!
//! ```text
//! % the ancestor program (§1)
//! ancestor(X, Y) <- parent(X, Y).
//! ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
//! excl_ancestor(X, Y, Z) <- ancestor(X, Y), ~ancestor(X, Z).
//!
//! % grouping and sets
//! part(P, <Sub>) <- p(P, Sub).
//! book_deal({X, Y, Z}) <- book(X, Px), book(Y, Py), book(Z, Pz),
//!                         Px + Py + Pz < 100.
//! ```
//!
//! * Variables start with an upper-case letter or `_`; `_` alone is the
//!   anonymous variable.
//! * Atoms/functors/predicates start with a lower-case letter; `scons` is
//!   recognized as the built-in set constructor.
//! * `{t₁, …, tₙ}` is an enumerated set, `{}` the empty set.
//! * `<t>` in term position is a grouping term; `t₁ < t₂` at literal level is
//!   a comparison (the position disambiguates, as in the paper).
//! * `~p(…)` is a negative literal. `<-` and `:-` both introduce bodies.
//! * Infix arithmetic (`+ - * / mod`) is sugar for evaluable terms; the
//!   functional forms `+(X, Y, Z)` etc. are also accepted as built-in
//!   predicates.
//! * `%` starts a line comment.

pub mod error;
pub mod lexer;
pub mod parser;

pub use error::ParseError;
pub use parser::{parse_atom, parse_program, parse_rule, parse_term};
