//! Tokenizer for the LDL1 concrete syntax.

use crate::error::{ParseError, Pos};

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Lower-case-initial identifier: atom / functor / predicate name.
    Ident(String),
    /// Upper-case- or `_`-initial identifier: variable name.
    Var(String),
    /// The bare anonymous variable `_`.
    Anon,
    /// Integer literal (optionally negative).
    Int(i64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `|` (list tail separator)
    Pipe,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `/=` or `!=`
    Ne,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `<-` or `:-`
    Arrow,
    /// `~`
    Tilde,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `mod` (keyword)
    Mod,
    /// `?-` query prefix.
    Query,
}

/// A token together with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Its source position.
    pub pos: Pos,
}

/// Tokenize `src` completely.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        // Skip whitespace and comments.
        loop {
            match chars.peek() {
                Some(c) if c.is_whitespace() => {
                    bump!();
                }
                Some('%') => {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        bump!();
                    }
                }
                _ => break,
            }
        }
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else { break };

        let tok = match c {
            '(' => {
                bump!();
                Tok::LParen
            }
            ')' => {
                bump!();
                Tok::RParen
            }
            '{' => {
                bump!();
                Tok::LBrace
            }
            '}' => {
                bump!();
                Tok::RBrace
            }
            '[' => {
                bump!();
                Tok::LBracket
            }
            ']' => {
                bump!();
                Tok::RBracket
            }
            '|' => {
                bump!();
                Tok::Pipe
            }
            ',' => {
                bump!();
                Tok::Comma
            }
            '.' => {
                bump!();
                Tok::Dot
            }
            '~' => {
                bump!();
                Tok::Tilde
            }
            '+' => {
                bump!();
                Tok::Plus
            }
            '*' => {
                bump!();
                Tok::Star
            }
            '=' => {
                bump!();
                Tok::Eq
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Ne
                } else {
                    return Err(ParseError::new(pos, "expected '=' after '!'"));
                }
            }
            '-' => {
                bump!();
                // `-` followed by a digit is a negative integer literal only
                // when it cannot be infix minus; we lex it as Minus and let
                // the parser build negative constants, except for the common
                // `-3` directly after punctuation — simpler: always Minus.
                Tok::Minus
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Ne
                } else {
                    Tok::Slash
                }
            }
            ':' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    Tok::Arrow
                } else {
                    return Err(ParseError::new(pos, "expected '-' after ':'"));
                }
            }
            '?' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    Tok::Query
                } else {
                    return Err(ParseError::new(pos, "expected '-' after '?'"));
                }
            }
            '<' => {
                bump!();
                match chars.peek() {
                    Some('-') => {
                        bump!();
                        Tok::Arrow
                    }
                    Some('=') => {
                        bump!();
                        Tok::Le
                    }
                    _ => Tok::Lt,
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('\\') => s.push('\\'),
                            Some('"') => s.push('"'),
                            other => {
                                return Err(ParseError::new(
                                    pos,
                                    format!("bad string escape {other:?}"),
                                ))
                            }
                        },
                        Some(c) => s.push(c),
                        None => return Err(ParseError::new(pos, "unterminated string literal")),
                    }
                }
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        n.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let v: i64 = n
                    .parse()
                    .map_err(|_| ParseError::new(pos, format!("integer out of range: {n}")))?;
                Tok::Int(v)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut id = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        id.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                if id == "_" {
                    Tok::Anon
                } else if id == "mod" {
                    Tok::Mod
                } else if id.starts_with(|c: char| c.is_uppercase() || c == '_') {
                    Tok::Var(id)
                } else {
                    Tok::Ident(id)
                }
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character {other:?}"),
                ))
            }
        };
        out.push(Spanned { tok, pos });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lex_rule() {
        assert_eq!(
            toks("a(X) <- p(X)."),
            vec![
                Tok::Ident("a".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            toks("< <= > >= = /= != <- :- ?- ~ + - * / mod"),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Arrow,
                Tok::Arrow,
                Tok::Query,
                Tok::Tilde,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Mod,
            ]
        );
    }

    #[test]
    fn lex_sets_groups_vars() {
        assert_eq!(
            toks("part(P, <Sub>) <- p(P, {1, 2})."),
            vec![
                Tok::Ident("part".into()),
                Tok::LParen,
                Tok::Var("P".into()),
                Tok::Comma,
                Tok::Lt,
                Tok::Var("Sub".into()),
                Tok::Gt,
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Var("P".into()),
                Tok::Comma,
                Tok::LBrace,
                Tok::Int(1),
                Tok::Comma,
                Tok::Int(2),
                Tok::RBrace,
                Tok::RParen,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        assert_eq!(
            toks("% header\n  p(1). % trailing\n"),
            vec![
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Int(1),
                Tok::RParen,
                Tok::Dot
            ]
        );
    }

    #[test]
    fn anon_and_underscore_vars() {
        assert_eq!(
            toks("_ _X Abc"),
            vec![Tok::Anon, Tok::Var("_X".into()), Tok::Var("Abc".into())]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\nb""#), vec![Tok::Str("a\nb".into())]);
    }

    #[test]
    fn positions_reported() {
        let ts = lex("p(\n  X)").unwrap();
        assert_eq!(ts[2].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("p :: q").is_err());
        assert!(lex("p # q").is_err());
    }
}
