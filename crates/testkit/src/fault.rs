//! I/O fault injection for crash-recovery testing.
//!
//! [`IoFault`] implements [`ldl_wal::WalFile`], so it can be swapped in
//! for the real log file with `Store::set_wal_file`. It captures every
//! appended byte in memory and simulates one of the ways a real disk
//! loses data at a crash ([`Fault`]). After driving the workload, a test
//! calls [`IoFault::persisted`] for the bytes that "survived", writes
//! them back to the data directory ([`materialize`]), and reopens the
//! store — exactly what a process restart after `kill -9` sees.
//!
//! The injector is deterministic: the same workload and fault always
//! produce the same surviving image.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use ldl_wal::WalFile;

/// One way a crash can mangle the write-ahead log.
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// The process dies mid-`write`: bytes up to the `N`-th appended byte
    /// (counting from the moment the injector was attached) reach the
    /// disk, the rest of that write is lost, and the write call fails.
    /// Every later operation fails too — the process is "dead".
    KillAtByte(u64),
    /// Silent media corruption: every write succeeds, but the surviving
    /// image has one bit flipped at `offset` (within the appended stream;
    /// out-of-range offsets flip nothing).
    FlipBit {
        /// Byte offset within the bytes appended after attach.
        offset: u64,
        /// Which bit (0–7) to flip.
        bit: u8,
    },
    /// The final `fsync` never reaches the platter: every operation
    /// succeeds, but the surviving image only contains the bytes covered
    /// by the *second-to-last* sync. Under `SyncPolicy::Never` nothing
    /// appended after attach survives.
    DropLastSync,
}

#[derive(Debug)]
struct State {
    fault: Fault,
    written: Vec<u8>,
    /// Bytes covered by the most recent `sync_data`.
    synced: u64,
    /// Bytes covered by the sync before that.
    synced_prev: u64,
    dead: bool,
}

/// A fault-injecting [`WalFile`]. Cloning shares the captured state, so
/// keep a clone around to call [`IoFault::persisted`] after handing one
/// to `Store::set_wal_file`.
#[derive(Clone, Debug)]
pub struct IoFault {
    state: Arc<Mutex<State>>,
}

impl IoFault {
    /// A fresh injector simulating `fault`.
    pub fn new(fault: Fault) -> IoFault {
        IoFault {
            state: Arc::new(Mutex::new(State {
                fault,
                written: Vec::new(),
                synced: 0,
                synced_prev: 0,
                dead: false,
            })),
        }
    }

    /// Total bytes accepted since attach (whether or not they survive).
    pub fn written(&self) -> u64 {
        self.state.lock().expect("fault state").written.len() as u64
    }

    /// Whether the simulated process has already crashed.
    pub fn dead(&self) -> bool {
        self.state.lock().expect("fault state").dead
    }

    /// The bytes that survive the crash — what the next process finds
    /// appended to the log after the attach point.
    pub fn persisted(&self) -> Vec<u8> {
        let s = self.state.lock().expect("fault state");
        match s.fault {
            // The killed write already cut `written` at the fault byte.
            Fault::KillAtByte(_) => s.written.clone(),
            Fault::FlipBit { offset, bit } => {
                let mut out = s.written.clone();
                if let Some(b) = out.get_mut(offset as usize) {
                    *b ^= 1 << (bit & 7);
                }
                out
            }
            Fault::DropLastSync => s.written[..s.synced_prev as usize].to_vec(),
        }
    }
}

fn crashed() -> io::Error {
    io::Error::other("injected crash: the simulated process is dead")
}

impl WalFile for IoFault {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().expect("fault state");
        if s.dead {
            return Err(crashed());
        }
        if let Fault::KillAtByte(n) = s.fault {
            let cur = s.written.len() as u64;
            if cur + buf.len() as u64 > n {
                let keep = n.saturating_sub(cur) as usize;
                s.written.extend_from_slice(&buf[..keep]);
                s.dead = true;
                return Err(io::Error::other(format!(
                    "injected crash: write killed at appended byte {n}"
                )));
            }
        }
        s.written.extend_from_slice(buf);
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut s = self.state.lock().expect("fault state");
        if s.dead {
            return Err(crashed());
        }
        s.synced_prev = s.synced;
        s.synced = s.written.len() as u64;
        Ok(())
    }
}

/// Simulate the restart after the crash: overwrite `dir`'s log with the
/// bytes it held *before* the injector was attached (`pre_attach`)
/// followed by what survived the fault. Reopening the store on `dir`
/// then recovers exactly what a real post-crash process would.
pub fn materialize(dir: &Path, pre_attach: &[u8], injector: &IoFault) -> io::Result<()> {
    let mut bytes = pre_attach.to_vec();
    bytes.extend_from_slice(&injector.persisted());
    std::fs::write(dir.join(ldl_wal::WAL_FILE), bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_at_byte_cuts_and_kills() {
        let mut f = IoFault::new(Fault::KillAtByte(10));
        f.write_all(b"01234567").unwrap(); // 8 bytes: fine
        let err = f.write_all(b"abcdef").unwrap_err(); // would reach 14 > 10
        assert!(err.to_string().contains("killed"), "{err}");
        assert!(f.dead());
        assert_eq!(f.persisted(), b"01234567ab"); // exactly 10 bytes
        assert!(f.write_all(b"x").is_err());
        assert!(f.sync_data().is_err());
    }

    #[test]
    fn flip_bit_is_silent() {
        let mut f = IoFault::new(Fault::FlipBit { offset: 2, bit: 0 });
        f.write_all(b"aaaa").unwrap();
        f.sync_data().unwrap();
        assert!(!f.dead());
        assert_eq!(f.persisted(), b"aa\x60a"); // 'a' = 0x61, bit 0 flipped
                                               // Out-of-range flips are no-ops.
        let mut g = IoFault::new(Fault::FlipBit { offset: 99, bit: 3 });
        g.write_all(b"zz").unwrap();
        assert_eq!(g.persisted(), b"zz");
    }

    #[test]
    fn drop_last_sync_keeps_previous_watermark() {
        let mut f = IoFault::new(Fault::DropLastSync);
        f.write_all(b"first").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"second").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"unsynced").unwrap();
        // The last sync covered "firstsecond"; dropping it leaves only
        // what the sync before covered.
        assert_eq!(f.persisted(), b"first");
        // With no syncs at all, nothing survives.
        let mut g = IoFault::new(Fault::DropLastSync);
        g.write_all(b"gone").unwrap();
        assert_eq!(g.persisted(), b"");
    }
}
