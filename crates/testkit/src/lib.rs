#![warn(missing_docs)]

//! Self-contained test and benchmark support.
//!
//! The workspace builds offline, so it cannot pull `proptest`, `rand`, or
//! `criterion` from crates.io. This crate provides the small slice of that
//! functionality the tests and benches actually use:
//!
//! * [`Rng`] — a seeded, deterministic xorshift64* generator;
//! * [`cases`] — a property-test driver running a closure over many seeds
//!   and reporting the failing seed on panic;
//! * [`cases_shrink`] — the same driver with a size parameter, which on
//!   failure re-runs the seed at progressively smaller sizes and reports
//!   the minimal failing one;
//! * [`gen`] — random stratified LDL1 programs (recursion + negation +
//!   grouping) for differential testing;
//! * [`fault`] — an I/O fault injector implementing [`ldl_wal::WalFile`],
//!   for crash-recovery testing of the durability layer;
//! * [`bench()`] / [`Sample`] — wall-clock timing with median/min reporting
//!   for the `harness = false` benchmark binaries.

pub mod fault;
pub mod gen;

use std::time::{Duration, Instant};

/// A deterministic xorshift64* pseudo-random generator.
///
/// Not cryptographic; statistically fine for generating test workloads.
/// The same seed always yields the same stream on every platform.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Rng {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        state ^= state >> 30;
        Rng { state }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `i64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index into empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform choice from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// The [`Rng`] seed for property-test case number `case`.
///
/// A full-avalanche (splitmix64-style) finalizer: every output bit depends
/// on every input bit, so consecutive case numbers get thoroughly
/// decorrelated, collision-free seeds. The previous derivation
/// (`0xC0FFEE ^ case * 0x9E3779B9`) only mixed the low 32 bits and mapped
/// distinct cases worryingly close together; `Rng::new`'s weak seed
/// scrambling then had to carry all the weight.
pub fn case_seed(case: u64) -> u64 {
    let mut z = case.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `body` once per case with a fresh deterministic [`Rng`], labelling
/// any panic with the case number so failures are reproducible: re-run with
/// `cases_from(failing_case, 1, body)`.
pub fn cases(n: u64, body: impl Fn(&mut Rng)) {
    cases_from(0, n, body);
}

/// [`cases`] starting from a specific case number (to replay one failure).
pub fn cases_from(start: u64, n: u64, body: impl Fn(&mut Rng)) {
    for case in start..start + n {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(case_seed(case));
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at case {case} (replay with cases_from({case}, 1, ..))");
            std::panic::resume_unwind(payload);
        }
    }
}

/// [`cases`] with shrinking: `body` receives a *size* alongside the `Rng`
/// and must generate an input no bigger than it. Each case first runs at
/// `max_size`; on failure the driver re-runs the same seed at sizes `1,
/// 2, …` and reports the **minimal failing size** for that seed, so the
/// counterexample you debug is as small as the generator can express.
/// Replay with `cases_shrink_from(case, 1, reported_size, body)`.
pub fn cases_shrink(n: u64, max_size: u32, body: impl Fn(&mut Rng, u32)) {
    cases_shrink_from(0, n, max_size, body);
}

/// [`cases_shrink`] starting from a specific case number.
pub fn cases_shrink_from(start: u64, n: u64, max_size: u32, body: impl Fn(&mut Rng, u32)) {
    for case in start..start + n {
        let seed = case_seed(case);
        let run = |size: u32| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut rng = Rng::new(seed);
                body(&mut rng, size);
            }))
        };
        if let Err(payload) = run(max_size) {
            let (size, payload) = minimal_failing_size(max_size, payload, run);
            eprintln!(
                "property failed at case {case} (seed {seed:#018x}), minimal failing size \
                 {size} of {max_size} (replay with cases_shrink_from({case}, 1, {size}, ..))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The smallest size in `1..=max_size` at which `run` fails, with that
/// failure's payload; falls back to (`max_size`, `original`) when only the
/// full size fails. Sizes are tried ascending, so the first hit is minimal.
fn minimal_failing_size<E>(
    max_size: u32,
    original: E,
    run: impl Fn(u32) -> Result<(), E>,
) -> (u32, E) {
    for size in 1..max_size {
        if let Err(payload) = run(size) {
            return (size, payload);
        }
    }
    (max_size, original)
}

/// The compiled-execution settings a suite should cover: both executors by
/// default, or only the one `LDL1_COMPILED` pins (`0`/`false` ⇒ the plan
/// interpreter, any other value ⇒ the register programs). Pinning lets a CI
/// matrix leg run each configuration exactly once instead of every suite
/// twice; the unpinned default keeps local `cargo test` covering both. The
/// first element is the configuration whose output a blessing run records.
pub fn compiled_matrix() -> Vec<bool> {
    match std::env::var("LDL1_COMPILED") {
        Err(_) => vec![true, false],
        Ok(v) => {
            let v = v.trim();
            vec![v != "0" && !v.eq_ignore_ascii_case("false")]
        }
    }
}

/// One benchmark measurement: per-iteration wall-clock statistics.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Median duration of one iteration.
    pub median: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

impl Sample {
    /// Median in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }

    /// `other.median / self.median` — how many times faster `self` is.
    pub fn speedup_over(&self, other: &Sample) -> f64 {
        other.median.as_secs_f64() / self.median.as_secs_f64().max(1e-12)
    }
}

/// Time `f` for `iters` iterations (after one untimed warm-up) and print
/// `group/label: median ms` in a stable, grep-friendly format.
pub fn bench(group: &str, label: &str, iters: usize, mut f: impl FnMut()) -> Sample {
    assert!(iters > 0);
    f(); // warm-up
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    times.sort();
    let s = Sample {
        median: times[times.len() / 2],
        min: times[0],
        iters,
    };
    println!(
        "{group}/{label}: {:.3} ms (min {:.3} ms, n={iters})",
        s.median_ms(),
        s.min.as_secs_f64() * 1e3
    );
    s
}

/// A [`std::alloc::GlobalAlloc`] wrapper over the system allocator that
/// counts allocation calls, for asserting that a hot path is
/// allocation-free. Install it in a dedicated integration-test binary (its
/// own process — the counter is global) with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ldl_testkit::CountingAlloc = ldl_testkit::CountingAlloc::new();
/// ```
///
/// then bracket the code under test with [`CountingAlloc::count`] /
/// [`CountingAlloc::delta`]. Reallocations count as one call; frees count
/// nothing.
pub struct CountingAlloc {
    allocs: std::sync::atomic::AtomicU64,
}

impl CountingAlloc {
    /// A zeroed counting allocator (usable as a `static` initializer).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            allocs: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Allocation calls made so far by this process.
    pub fn count(&self) -> u64 {
        self.allocs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Allocation calls since a previous [`CountingAlloc::count`] reading.
    pub fn delta(&self, since: u64) -> u64 {
        self.count() - since
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// with no effect on allocation behavior.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        self.allocs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        self.allocs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge.
        let mut c = Rng::new(43);
        assert_ne!(xs[0], c.next_u64());
        // Ranges stay in bounds and hit both halves.
        let mut r = Rng::new(7);
        let vals: Vec<i64> = (0..200).map(|_| r.range(-5, 5)).collect();
        assert!(vals.iter().all(|&v| (-5..5).contains(&v)));
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v >= 0));
    }

    #[test]
    fn cases_run_distinct_streams() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let first = AtomicU64::new(0);
        let distinct = AtomicU64::new(0);
        cases(8, |rng| {
            let v = rng.next_u64();
            let prev = first.swap(v, Ordering::SeqCst);
            if prev != 0 && prev != v {
                distinct.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(distinct.load(Ordering::SeqCst) >= 6);
    }

    #[test]
    fn case_seeds_are_collision_free_and_decorrelated() {
        // No collisions over a realistic sweep of case numbers…
        let seeds: std::collections::HashSet<u64> = (0..4096).map(case_seed).collect();
        assert_eq!(seeds.len(), 4096);
        // …and adjacent cases produce unrelated streams, not shifted ones.
        for case in 0..64 {
            let a = Rng::new(case_seed(case)).next_u64();
            let b = Rng::new(case_seed(case + 1)).next_u64();
            assert_ne!(a, b, "cases {case} and {} share a stream", case + 1);
            // The old derivation mapped different cases to nearby seeds;
            // full avalanche means roughly half the bits differ.
            let hamming = (case_seed(case) ^ case_seed(case + 1)).count_ones();
            assert!(
                (8..=56).contains(&hamming),
                "seeds of cases {case}/{} differ in only {hamming} bits",
                case + 1
            );
        }
    }

    #[test]
    fn shrink_finds_minimal_failing_size() {
        // Failure iff size ≥ 5: the minimal reported size must be 5
        // regardless of the size the failure was first observed at.
        let run = |size: u32| if size >= 5 { Err(size) } else { Ok(()) };
        let (size, payload) = minimal_failing_size(12, 12, run);
        assert_eq!(size, 5);
        assert_eq!(payload, 5);
        // A failure only at the maximum size reports the maximum.
        let only_max = |size: u32| if size >= 9 { Err(size) } else { Ok(()) };
        let (size, _) = minimal_failing_size(9, 9, only_max);
        assert_eq!(size, 9);
    }

    #[test]
    fn cases_shrink_passes_when_property_holds() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ran = AtomicU64::new(0);
        cases_shrink(6, 10, |rng, size| {
            assert!(size >= 1);
            let v = rng.range(0, i64::from(size) + 1);
            assert!(v <= i64::from(size));
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn cases_shrink_reports_minimal_size() {
        // The property fails whenever size ≥ 3; shrinking must re-raise
        // from the size-3 run (payload is checked via the panic message).
        let result = std::panic::catch_unwind(|| {
            cases_shrink(1, 8, |_rng, size| {
                assert!(size < 3, "failed at size {size}");
            });
        });
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("failed at size 3"),
            "expected the minimal (size 3) failure, got: {msg}"
        );
    }

    #[test]
    fn bench_reports_sane_sample() {
        let s = bench("testkit", "noop", 5, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.median);
    }
}
