#![warn(missing_docs)]

//! Self-contained test and benchmark support.
//!
//! The workspace builds offline, so it cannot pull `proptest`, `rand`, or
//! `criterion` from crates.io. This crate provides the small slice of that
//! functionality the tests and benches actually use:
//!
//! * [`Rng`] — a seeded, deterministic xorshift64* generator;
//! * [`cases`] — a property-test driver running a closure over many seeds
//!   and reporting the failing seed on panic;
//! * [`bench`] / [`Sample`] — wall-clock timing with median/min reporting
//!   for the `harness = false` benchmark binaries.

use std::time::{Duration, Instant};

/// A deterministic xorshift64* pseudo-random generator.
///
/// Not cryptographic; statistically fine for generating test workloads.
/// The same seed always yields the same stream on every platform.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Rng {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        state ^= state >> 30;
        Rng { state }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `i64` in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index into empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform choice from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// Run `body` once per case with a fresh deterministic [`Rng`], labelling
/// any panic with the case number so failures are reproducible: re-run with
/// `cases_from(failing_case, 1, body)`.
pub fn cases(n: u64, body: impl Fn(&mut Rng)) {
    cases_from(0, n, body);
}

/// [`cases`] starting from a specific case number (to replay one failure).
pub fn cases_from(start: u64, n: u64, body: impl Fn(&mut Rng)) {
    for case in start..start + n {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(0xC0FFEE ^ case.wrapping_mul(0x9E37_79B9));
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at case {case} (replay with cases_from({case}, 1, ..))");
            std::panic::resume_unwind(payload);
        }
    }
}

/// One benchmark measurement: per-iteration wall-clock statistics.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Median duration of one iteration.
    pub median: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

impl Sample {
    /// Median in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }

    /// `other.median / self.median` — how many times faster `self` is.
    pub fn speedup_over(&self, other: &Sample) -> f64 {
        other.median.as_secs_f64() / self.median.as_secs_f64().max(1e-12)
    }
}

/// Time `f` for `iters` iterations (after one untimed warm-up) and print
/// `group/label: median ms` in a stable, grep-friendly format.
pub fn bench(group: &str, label: &str, iters: usize, mut f: impl FnMut()) -> Sample {
    assert!(iters > 0);
    f(); // warm-up
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    times.sort();
    let s = Sample {
        median: times[times.len() / 2],
        min: times[0],
        iters,
    };
    println!(
        "{group}/{label}: {:.3} ms (min {:.3} ms, n={iters})",
        s.median_ms(),
        s.min.as_secs_f64() * 1e3
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge.
        let mut c = Rng::new(43);
        assert_ne!(xs[0], c.next_u64());
        // Ranges stay in bounds and hit both halves.
        let mut r = Rng::new(7);
        let vals: Vec<i64> = (0..200).map(|_| r.range(-5, 5)).collect();
        assert!(vals.iter().all(|&v| (-5..5).contains(&v)));
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v >= 0));
    }

    #[test]
    fn cases_run_distinct_streams() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let first = AtomicU64::new(0);
        let distinct = AtomicU64::new(0);
        cases(8, |rng| {
            let v = rng.next_u64();
            let prev = first.swap(v, Ordering::SeqCst);
            if prev != 0 && prev != v {
                distinct.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(distinct.load(Ordering::SeqCst) >= 6);
    }

    #[test]
    fn bench_reports_sane_sample() {
        let s = bench("testkit", "noop", 5, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.median);
    }
}
