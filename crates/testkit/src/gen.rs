//! Random stratified-program generation for differential testing.
//!
//! Produces admissible LDL1 programs exercising the constructs whose
//! interaction is hardest to get right — recursion, stratified negation,
//! and grouping — together with a matching random EDB. The output is plain
//! data (source text + tuples), so this crate stays dependency-free; the
//! caller parses and loads it with whatever pipeline it is testing.
//!
//! The shape mirrors the paper's layering discipline: a transitive-closure
//! base layer `p0` over edge relation `e0(X, Y)`, then a random stack of
//! layers `p1, p2, …` where each `pl` reads `p(l-1)` through one of five
//! templates (recursion, negation on the marker relation `e1(X)`,
//! grouping with `member` flattening, a three-way join back through `e0`,
//! or negated self-comparison). Every template keeps arity 2 so layers
//! compose freely, and every negated/grouped read looks strictly down the
//! stack — the program is admissible by construction.
//!
//! EDB constants are not just integers: a slice of every node domain is
//! set-valued (`{a, b}`) or compound-valued (`f(a, b)`), so joins,
//! duplicate elimination, grouping, and negation all run over nested
//! ground values — the structures whose identity an interning engine must
//! get right — and grouping layers build sets *of* those sets.
//!
//! Above a minimum size, a third of the cases **skew** one EDB relation
//! 10–50× past the others (profiles: balanced, `e0`-heavy, `e1`-heavy).
//! Skewed cases make join order matter: a planner that reads relation
//! statistics schedules them differently from one counting bound argument
//! positions, so the differential oracle actually exercises the claim that
//! cost-based and greedy plans compute the same model.

use crate::Rng;

/// A ground constant in a generated EDB tuple.
///
/// Kept as plain data (no `ldl-value` dependency): the loader converts to
/// engine values. Both endpoints of an edge draw from one shared per-case
/// pool, so structurally-equal nested constants recur across tuples and
/// joins/negation tests actually hit them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenConst {
    /// An integer constant.
    Int(i64),
    /// A set of integers, `{a, b, …}`. May list duplicates — set semantics
    /// collapse them, which is itself worth exercising.
    Set(Vec<i64>),
    /// A compound term over integers, `f(a, b, …)`.
    Compound(&'static str, Vec<i64>),
}

/// A generated differential-test case: program source plus EDB tuples.
#[derive(Clone, Debug)]
pub struct GeneratedCase {
    /// LDL1 source text (rules only; facts come from `edb`).
    pub src: String,
    /// EDB tuples, as `(predicate, ground arguments)`.
    pub edb: Vec<(&'static str, Vec<GenConst>)>,
    /// Number of layers in the generated program (≥ 1).
    pub layers: usize,
    /// The top predicate name, `p{layers - 1}` — query this to reach every
    /// layer below.
    pub top: String,
    /// How far one EDB relation was inflated past the others (1 = balanced,
    /// 10–50 = skewed). Skewed cases are join-order-sensitive.
    pub skew_factor: u32,
}

/// Generate one random stratified program + EDB, scaled by `size`.
///
/// `size` bounds everything at once — node-domain width, edge count, marker
/// count, and layer count — which is exactly the knob
/// [`crate::cases_shrink`] turns to minimize a failing case.
pub fn stratified_case(rng: &mut Rng, size: u32) -> GeneratedCase {
    let size = size.max(1) as usize;
    let nodes = (2 + size / 2) as i64;
    let max_edges = 2 * size;
    let layers = 2 + rng.index(3.min(size)); // 2..=4 strata
    let mut src = String::from("p0(X, Y) <- e0(X, Y).\np0(X, Y) <- e0(X, Z), p0(Z, Y).\n");
    for l in 1..layers {
        let below = l - 1;
        match rng.index(5) {
            0 => src.push_str(&format!(
                "p{l}(X, Y) <- p{below}(X, Y).\np{l}(X, Y) <- p{below}(X, Z), p{l}(Z, Y).\n"
            )),
            1 => src.push_str(&format!("p{l}(X, Y) <- p{below}(X, Y), ~e1(Y).\n")),
            2 => {
                // Grouping then flattening keeps arity 2 across layers.
                src.push_str(&format!(
                    "g{l}(X, <Y>) <- p{below}(X, Y).\n\
                     p{l}(X, Y) <- g{l}(X, S), member(Y, S).\n"
                ));
            }
            3 => {
                // Three-way join back through the base edges: with a skewed
                // `e0`, the scheduled order of these literals changes with
                // the planner, so cost vs greedy divergence is observable.
                src.push_str(&format!(
                    "p{l}(X, Y) <- e0(X, Z), p{below}(Z, W), e0(W, Y).\n"
                ));
            }
            _ => src.push_str(&format!("p{l}(X, Y) <- p{below}(X, Y), ~p{below}(Y, X).\n")),
        }
    }

    // A minority of cases store facts for the *IDB* head `p0` as well:
    // mixed EDB/IDB predicates are where magic-set rewrites and
    // retraction-of-stored-twin maintenance historically break, so the
    // differential oracle must see them. (Sizes below 3 stay pure-EDB so
    // shrinking converges on the simplest shape first.)
    let mixed_idb = size >= 3 && rng.index(3) == 0;

    // One shared node pool per case: mostly ints, with a set-valued and a
    // compound-valued minority. Edges and markers index into the same pool,
    // so nested values participate in joins and negation, not just storage.
    let pool: Vec<GenConst> = (0..nodes)
        .map(|i| match rng.index(4) {
            0 => GenConst::Set(vec![rng.range(0, nodes), rng.range(0, nodes)]),
            1 => GenConst::Compound("f", vec![rng.range(0, nodes)]),
            _ => GenConst::Int(i),
        })
        .collect();
    let pick = |rng: &mut Rng| pool[rng.index(pool.len())].clone();

    let mut edb: Vec<(&'static str, Vec<GenConst>)> = Vec::new();
    for _ in 0..rng.index(max_edges + 1) {
        let a = pick(rng);
        let b = pick(rng);
        edb.push(("e0", vec![a, b]));
    }
    for _ in 0..rng.index(size + 1) {
        edb.push(("e1", vec![pick(rng)]));
    }
    if mixed_idb {
        for _ in 0..(1 + rng.index(size)) {
            let a = pick(rng);
            let b = pick(rng);
            edb.push(("p0", vec![a, b]));
        }
    }

    // A third of the larger cases skew one relation far past the others so
    // join order matters. The inflating tuples draw from a domain about 4×
    // wider than their own count: large relations with high distinct-value
    // estimates, but sparse enough that `p0`'s transitive closure stays
    // near-linear and the oracle's naive mode stays fast. Sizes below 4
    // never skew, so case shrinking still converges on tiny programs.
    let skew_factor = if size < 4 {
        1
    } else {
        match rng.index(3) {
            0 => 1,
            profile => {
                let factor = 10 + rng.index(41) as u32; // 10..=50
                let extra = size * factor as usize;
                let wide = (extra as i64 * 4).max(nodes + 1);
                for _ in 0..extra {
                    if profile == 1 {
                        // `e0`-heavy: fat edge relation, endpoints mixing the
                        // shared pool (joinable) with wide ints (selective).
                        let a = if rng.index(2) == 0 {
                            pick(rng)
                        } else {
                            GenConst::Int(rng.range(0, wide))
                        };
                        edb.push(("e0", vec![a, GenConst::Int(rng.range(0, wide))]));
                    } else {
                        // `e1`-heavy: fat marker relation, mostly off-domain,
                        // so `~e1(Y)` probes a large relation it rarely hits.
                        edb.push(("e1", vec![GenConst::Int(rng.range(0, wide))]));
                    }
                }
                factor
            }
        }
    };

    GeneratedCase {
        src,
        edb,
        layers,
        top: format!("p{}", layers - 1),
        skew_factor,
    }
}

/// A generated EDB tuple: `(predicate, ground arguments)`.
pub type GenTuple = (&'static str, Vec<GenConst>);

/// One step of a generated mutation sequence.
///
/// Plain data, like [`GenConst`]: the oracle converts to engine facts and
/// stages them on whatever mutation API it is testing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenMutation {
    /// Assert `pred(args…)`. May duplicate a present fact (a no-op the
    /// engine must tolerate).
    Assert(&'static str, Vec<GenConst>),
    /// Retract `pred(args…)`. The generator only emits retractions of
    /// facts present in the virtual state at that point, so every
    /// generated batch commits cleanly.
    Retract(&'static str, Vec<GenConst>),
    /// Replace `pred(old…)` with `pred(new…)` in one step.
    Update {
        /// The predicate both sides share.
        pred: &'static str,
        /// The present fact to remove.
        old: Vec<GenConst>,
        /// The arguments replacing it.
        new: Vec<GenConst>,
    },
}

/// Generate `batches` transactional mutation batches against `case`'s EDB,
/// returning them together with the surviving EDB after all of them — the
/// input for a one-shot recompute the oracle compares against.
///
/// The generator tracks the virtual EDB state batch by batch (set
/// semantics, like the engine): retractions and update-old sides always
/// name a present fact, assertions recombine argument values already in
/// the case (plus occasional fresh integers) so new tuples actually join
/// with existing ones. Batches are weighted toward churn — roughly half
/// the steps delete something — because deletion is the path under test.
pub fn mutation_sequence(
    rng: &mut Rng,
    case: &GeneratedCase,
    batches: usize,
) -> (Vec<Vec<GenMutation>>, Vec<GenTuple>) {
    // Engine equality is *structural on values*, not on `GenConst` spellings:
    // `Set([1, 0])` and `Set([0, 1])` name the same fact. The virtual state
    // must track canonical tuples, or retracting one spelling would leave the
    // equal twin "alive" here while the engine removed the fact.
    let canon_const = |c: &GenConst| -> GenConst {
        match c {
            GenConst::Set(xs) => {
                let mut v = xs.clone();
                v.sort_unstable();
                v.dedup();
                GenConst::Set(v)
            }
            other => other.clone(),
        }
    };
    let canon = |args: &[GenConst]| -> Vec<GenConst> { args.iter().map(canon_const).collect() };

    // The virtual state starts as the case EDB under set semantics.
    let mut live: Vec<GenTuple> = Vec::new();
    for (pred, args) in &case.edb {
        let t = (*pred, canon(args));
        if !live.contains(&t) {
            live.push(t);
        }
    }
    // Argument pool for fresh assertions: every constant the case already
    // uses, so generated tuples connect to the existing graph.
    let pool: Vec<GenConst> = {
        let mut p: Vec<GenConst> = Vec::new();
        for (_, args) in &case.edb {
            for a in args {
                let a = canon_const(a);
                if !p.contains(&a) {
                    p.push(a);
                }
            }
        }
        if p.is_empty() {
            p.push(GenConst::Int(0));
        }
        p
    };
    let fresh = |rng: &mut Rng| -> GenConst {
        if rng.index(4) == 0 {
            GenConst::Int(rng.range(0, 1 + pool.len() as i64 * 2))
        } else {
            pool[rng.index(pool.len())].clone()
        }
    };
    let preds: [(&'static str, usize); 3] = [("e0", 2), ("e1", 1), ("p0", 2)];

    let mut out: Vec<Vec<GenMutation>> = Vec::new();
    for _ in 0..batches {
        let mut batch: Vec<GenMutation> = Vec::new();
        for _ in 0..(1 + rng.index(3)) {
            let deletion_possible = !live.is_empty();
            match rng.index(4) {
                0 | 1 if deletion_possible => {
                    let i = rng.index(live.len());
                    let (pred, args) = live.swap_remove(i);
                    if rng.index(2) == 0 {
                        batch.push(GenMutation::Retract(pred, args));
                    } else {
                        let new: Vec<GenConst> = args.iter().map(|_| fresh(rng)).collect();
                        let t = (pred, new.clone());
                        if !live.contains(&t) {
                            live.push(t);
                        }
                        batch.push(GenMutation::Update {
                            pred,
                            old: args,
                            new,
                        });
                    }
                }
                _ => {
                    let (pred, arity) = preds[rng.index(preds.len())];
                    let args: Vec<GenConst> = (0..arity).map(|_| fresh(rng)).collect();
                    let t = (pred, args.clone());
                    if !live.contains(&t) {
                        live.push(t);
                    }
                    batch.push(GenMutation::Assert(pred, args));
                }
            }
        }
        out.push(batch);
    }
    (out, live)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_deterministic_per_seed() {
        let a = stratified_case(&mut Rng::new(99), 8);
        let b = stratified_case(&mut Rng::new(99), 8);
        assert_eq!(a.src, b.src);
        assert_eq!(a.edb, b.edb);
    }

    #[test]
    fn generated_cases_vary_and_cover_all_templates() {
        let mut negation = false;
        let mut grouping = false;
        let mut recursion = false;
        let mut threeway = false;
        let mut sets = false;
        let mut compounds = false;
        let mut balanced = false;
        let mut skewed = false;
        for seed in 0..64 {
            let c = stratified_case(&mut Rng::new(crate::case_seed(seed)), 10);
            assert!(c.layers >= 2 && c.layers <= 4);
            assert!(c.src.contains("p0(X, Y) <- e0(X, Y)."));
            assert_eq!(c.top, format!("p{}", c.layers - 1));
            negation |= c.src.contains('~');
            grouping |= c.src.contains("<Y>");
            recursion |= c.src.contains("p1(X, Z), p1(Z, Y)") || c.layers == 2;
            threeway |= c.src.contains("e0(X, Z), p0(Z, W), e0(W, Y)");
            balanced |= c.skew_factor == 1;
            skewed |= c.skew_factor > 1;
            if c.skew_factor > 1 {
                assert!((10..=50).contains(&c.skew_factor));
                assert!(c.edb.len() >= 10 * 10, "skewed case is not actually fat");
            }
            for (_, args) in &c.edb {
                for a in args {
                    sets |= matches!(a, GenConst::Set(_));
                    compounds |= matches!(a, GenConst::Compound(..));
                }
            }
        }
        assert!(negation && grouping && recursion && threeway);
        assert!(sets && compounds, "nested EDB constants never generated");
        assert!(balanced && skewed, "skew profiles never varied");
    }

    #[test]
    fn mutation_sequences_are_valid_and_deterministic() {
        let case = stratified_case(&mut Rng::new(7), 6);
        let (a, live_a) = mutation_sequence(&mut Rng::new(11), &case, 5);
        let (b, live_b) = mutation_sequence(&mut Rng::new(11), &case, 5);
        assert_eq!(a, b);
        assert_eq!(live_a, live_b);

        // Replaying the batches against the case EDB must never retract an
        // absent fact, and must land on the surviving EDB the generator
        // reported.
        let mut live: Vec<(&'static str, Vec<GenConst>)> = Vec::new();
        for t in &case.edb {
            if !live.contains(t) {
                live.push(t.clone());
            }
        }
        for batch in &a {
            for m in batch {
                match m {
                    GenMutation::Assert(p, args) => {
                        let t = (*p, args.clone());
                        if !live.contains(&t) {
                            live.push(t);
                        }
                    }
                    GenMutation::Retract(p, args) => {
                        let t = (*p, args.clone());
                        let i = live
                            .iter()
                            .position(|x| *x == t)
                            .expect("retraction of an absent fact");
                        live.remove(i);
                    }
                    GenMutation::Update { pred, old, new } => {
                        let t = (*pred, old.clone());
                        let i = live
                            .iter()
                            .position(|x| *x == t)
                            .expect("update of an absent fact");
                        live.remove(i);
                        let t = (*pred, new.clone());
                        if !live.contains(&t) {
                            live.push(t);
                        }
                    }
                }
            }
        }
        assert_eq!(live.len(), live_a.len());
        assert!(live.iter().all(|t| live_a.contains(t)));
    }

    #[test]
    fn mixed_idb_cases_store_facts_for_rule_heads() {
        let mut seen = false;
        for seed in 0..32 {
            let c = stratified_case(&mut Rng::new(crate::case_seed(seed)), 8);
            seen |= c.edb.iter().any(|(p, _)| *p == "p0");
        }
        assert!(seen, "no mixed EDB/IDB case in 32 seeds");
    }

    #[test]
    fn size_one_case_is_tiny() {
        let c = stratified_case(&mut Rng::new(1), 1);
        assert!(c.edb.len() <= 4);
        let in_domain = |v: i64| (0..=2).contains(&v);
        for (_, args) in &c.edb {
            for a in args {
                match a {
                    GenConst::Int(v) => assert!(in_domain(*v)),
                    GenConst::Set(xs) | GenConst::Compound(_, xs) => {
                        assert!(xs.iter().all(|&v| in_domain(v)))
                    }
                }
            }
        }
    }
}
